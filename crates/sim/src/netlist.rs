//! Hierarchy flattening and netlist compilation.
//!
//! The Low-form circuit is flattened into a single namespace of
//! dotted full paths (`top.u0.sum_1`), expressions are compiled first
//! into an index-resolved tree ([`CExpr`]) and from there into flat
//! postorder bytecode (see [`crate::compile`]) so evaluation never
//! touches strings or heap-allocated tree nodes. Combinational
//! definitions are topologically ordered (levelized) so one linear
//! sweep per cycle reaches the zero-delay fixpoint — the property §3
//! of the paper relies on ("all logical values will be stable at every
//! clock edge") — and the per-signal fan-out graph lets the simulator
//! re-evaluate only the cone affected by a change.

use std::collections::HashMap;

use bits::Bits;
use hgf_ir::expr::{BinaryOp, Expr, UnaryOp};
use hgf_ir::{Circuit, PortDir, SignalKind, Stmt};

use crate::compile::{plan_partition, CodeRange, Partition, Program};
use crate::control::{HierNode, SimError};

/// Compiled expression with signal references resolved to indices.
/// The bytecode compiler consumes this tree; the tree-walking
/// [`CExpr::eval`] survives as the reference semantics the property
/// tests check the bytecode against.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Lit(Bits),
    Sig(usize),
    Unary(UnaryOp, Box<CExpr>),
    Binary(BinaryOp, Box<CExpr>, Box<CExpr>),
    Mux(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    Slice(Box<CExpr>, u32, u32),
    Cat(Box<CExpr>, Box<CExpr>),
    /// Combinational memory read: `mems[mem].words[addr]`.
    MemRead(usize, Box<CExpr>),
}

impl CExpr {
    /// Reference tree-walking evaluator. Kept as the executable
    /// specification for the bytecode engine (property-tested in
    /// [`crate::compile`]); production evaluation always runs the
    /// compiled program.
    #[cfg(test)]
    pub(crate) fn eval(&self, values: &[Bits], mems: &[MemState]) -> Bits {
        use hgf_ir::expr::apply_binary;
        match self {
            CExpr::Lit(b) => b.clone(),
            CExpr::Sig(i) => values[*i].clone(),
            CExpr::Unary(op, e) => {
                let v = e.eval(values, mems);
                match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::ReduceAnd => v.reduce_and(),
                    UnaryOp::ReduceOr => v.reduce_or(),
                    UnaryOp::ReduceXor => v.reduce_xor(),
                }
            }
            CExpr::Binary(op, l, r) => {
                apply_binary(*op, &l.eval(values, mems), &r.eval(values, mems))
            }
            CExpr::Mux(s, t, e) => {
                if s.eval(values, mems).is_truthy() {
                    t.eval(values, mems)
                } else {
                    e.eval(values, mems)
                }
            }
            CExpr::Slice(e, hi, lo) => e.eval(values, mems).slice(*hi, *lo),
            CExpr::Cat(h, l) => h.eval(values, mems).concat(&l.eval(values, mems)),
            CExpr::MemRead(m, addr) => {
                let mem = &mems[*m];
                let a = addr.eval(values, mems).to_u64() as usize;
                if a < mem.words.len() {
                    mem.words[a].clone()
                } else {
                    Bits::zero(mem.width)
                }
            }
        }
    }

    fn deps(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Lit(_) => {}
            CExpr::Sig(i) => out.push(*i),
            CExpr::Unary(_, e) | CExpr::Slice(e, _, _) | CExpr::MemRead(_, e) => e.deps(out),
            CExpr::Binary(_, l, r) | CExpr::Cat(l, r) => {
                l.deps(out);
                r.deps(out);
            }
            CExpr::Mux(s, t, e) => {
                s.deps(out);
                t.deps(out);
                e.deps(out);
            }
        }
    }

    /// Memory indices this expression reads.
    fn mem_deps(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Lit(_) | CExpr::Sig(_) => {}
            CExpr::Unary(_, e) | CExpr::Slice(e, _, _) => e.mem_deps(out),
            CExpr::Binary(_, l, r) | CExpr::Cat(l, r) => {
                l.mem_deps(out);
                r.mem_deps(out);
            }
            CExpr::Mux(s, t, e) => {
                s.mem_deps(out);
                t.mem_deps(out);
                e.mem_deps(out);
            }
            CExpr::MemRead(m, e) => {
                out.push(*m);
                e.mem_deps(out);
            }
        }
    }
}

/// Simulated memory contents.
#[derive(Debug, Clone)]
pub(crate) struct MemState {
    pub(crate) width: u32,
    pub(crate) words: Vec<Bits>,
}

/// A register: signal index, optional compiled next-value expression
/// (absent means the register holds), optional synchronous reset
/// value.
#[derive(Debug, Clone)]
pub(crate) struct FlatReg {
    pub(crate) sig: usize,
    pub(crate) next: Option<CodeRange>,
    pub(crate) init: Option<Bits>,
}

/// A synchronous memory write port (compiled address/data/enable).
#[derive(Debug, Clone)]
pub(crate) struct FlatWrite {
    pub(crate) mem: usize,
    pub(crate) addr: CodeRange,
    pub(crate) data: CodeRange,
    pub(crate) en: CodeRange,
}

/// One combinational definition: target signal slot and its compiled
/// code. Stored in topological order.
#[derive(Debug, Clone)]
pub(crate) struct CompiledDef {
    pub(crate) sig: usize,
    pub(crate) code: CodeRange,
}

/// The flattened, compiled design.
///
/// Public so analysis tooling (the `hgdb-lint` crate's netlist-level
/// checks) can build and query the same def graph the simulator runs;
/// the compiled internals (bytecode, partition plan, fan-out graph)
/// stay crate-private.
#[derive(Debug, Clone)]
pub struct FlatNetlist {
    pub(crate) names: Vec<String>,
    pub(crate) index: HashMap<String, usize>,
    pub(crate) widths: Vec<u32>,
    /// Shared bytecode for all compiled expressions.
    pub(crate) program: Program,
    /// Combinational definitions in topological order (region-major,
    /// level-sorted within each region — see [`Partition`]).
    pub(crate) defs: Vec<CompiledDef>,
    /// Region/level plan over `defs` for the parallel sweep.
    pub(crate) partition: Partition,
    pub(crate) regs: Vec<FlatReg>,
    pub(crate) mems: Vec<MemState>,
    /// Memory path → index (mirrors `index` for the signal namespace).
    pub(crate) mem_index: HashMap<String, usize>,
    pub(crate) writes: Vec<FlatWrite>,
    /// Per-signal pokeability: top-level input ports plus `reset`.
    pub(crate) is_input: Vec<bool>,
    /// Per-signal register flag (targets of `set_value` forcing).
    pub(crate) is_reg: Vec<bool>,
    pub(crate) reset: usize,
    pub(crate) hierarchy: HierNode,
    /// For each signal slot, the (topo-order) def indices that read
    /// it: the direct fan-out used for incremental re-evaluation.
    pub(crate) sig_fanout: Vec<Vec<u32>>,
    /// For each memory, the def indices that read it.
    pub(crate) mem_fanout: Vec<Vec<u32>>,
}

impl FlatNetlist {
    /// Flattens and compiles a Low-form circuit.
    ///
    /// # Errors
    ///
    /// [`SimError::Build`] when the circuit fails validation or is not
    /// in Low form; [`SimError::CombinationalLoop`] carrying one
    /// minimal cycle (full signal paths, first repeated at the end)
    /// when the combinational def graph is cyclic.
    pub fn build(circuit: &Circuit) -> Result<FlatNetlist, SimError> {
        circuit
            .validate()
            .map_err(|e| SimError::Build(e.to_string()))?;
        circuit
            .check_low()
            .map_err(|e| SimError::Build(e.to_string()))?;

        let mut b = Builder {
            circuit,
            names: Vec::new(),
            index: HashMap::new(),
            widths: Vec::new(),
            raw_defs: Vec::new(),
            raw_regs: Vec::new(),
            mems: Vec::new(),
            mem_index: HashMap::new(),
            raw_writes: Vec::new(),
        };

        let top = circuit.top_module();
        let prefix = top.name.clone();
        // Implicit global reset.
        let reset = b.declare(&format!("{prefix}.reset"), 1);
        b.declare_module(top, &prefix);
        let mut hierarchy = HierNode::new(top.name.clone());
        b.collect_module(top, &prefix, &mut hierarchy)?;
        hierarchy.signals.push("reset".into());

        let mut is_input = vec![false; b.names.len()];
        for p in top.ports.iter().filter(|p| p.dir == PortDir::Input) {
            is_input[b.index[&format!("{prefix}.{}", p.name)]] = true;
        }
        is_input[reset] = true;

        // Topological sort of combinational defs (Kahn).
        let def_of: HashMap<usize, usize> = b
            .raw_defs
            .iter()
            .enumerate()
            .map(|(di, (sig, _))| (*sig, di))
            .collect();
        let n = b.raw_defs.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (di, (_, expr)) in b.raw_defs.iter().enumerate() {
            let mut deps = Vec::new();
            expr.deps(&mut deps);
            for d in deps {
                if let Some(&src) = def_of.get(&d) {
                    indegree[di] += 1;
                    dependents[src].push(di);
                    preds[di].push(src);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(di) = queue.pop() {
            order.push(di);
            for &next in &dependents[di] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        if order.len() != n {
            // Kahn left a residual subgraph; every node in it sits on
            // or downstream of a cycle. Report one *minimal* cycle —
            // not the whole residue, which would implicate innocent
            // downstream logic.
            let cycle: Vec<String> = minimal_cycle(&indegree, &preds, &dependents)
                .into_iter()
                .map(|i| b.names[b.raw_defs[i].0].clone())
                .collect();
            return Err(SimError::CombinationalLoop(cycle));
        }

        // Regroup the topo order region-major with level sorting inside
        // each region — still a valid topological order — so the
        // parallel sweep can hand contiguous def ranges to workers.
        let (order, partition) = plan_partition(&preds, &order);

        // Lower every expression to bytecode, defs in final order, and
        // record each def's direct fan-in for the fan-out graph.
        let mut program = Program::default();
        let mut defs = Vec::with_capacity(n);
        let mut sig_fanout: Vec<Vec<u32>> = vec![Vec::new(); b.names.len()];
        let mut mem_fanout: Vec<Vec<u32>> = vec![Vec::new(); b.mems.len()];
        for &raw_di in &order {
            let (sig, expr) = &b.raw_defs[raw_di];
            let di = defs.len() as u32;
            let code = program.compile(expr);
            let mut deps = Vec::new();
            expr.deps(&mut deps);
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                sig_fanout[d].push(di);
            }
            let mut mdeps = Vec::new();
            expr.mem_deps(&mut mdeps);
            mdeps.sort_unstable();
            mdeps.dedup();
            for m in mdeps {
                mem_fanout[m].push(di);
            }
            defs.push(CompiledDef { sig: *sig, code });
        }

        let regs: Vec<FlatReg> = b
            .raw_regs
            .iter()
            .map(|r| FlatReg {
                sig: r.sig,
                next: r.next.as_ref().map(|e| program.compile(e)),
                init: r.init.clone(),
            })
            .collect();
        let writes: Vec<FlatWrite> = b
            .raw_writes
            .iter()
            .map(|w| FlatWrite {
                mem: w.mem,
                addr: program.compile(&w.addr),
                data: program.compile(&w.data),
                en: program.compile(&w.en),
            })
            .collect();

        let mut is_reg = vec![false; b.names.len()];
        for r in &regs {
            is_reg[r.sig] = true;
        }

        Ok(FlatNetlist {
            names: b.names,
            index: b.index,
            widths: b.widths,
            program,
            defs,
            partition,
            regs,
            mems: b.mems,
            mem_index: b.mem_index,
            writes,
            is_input,
            is_reg,
            reset,
            hierarchy,
            sig_fanout,
            mem_fanout,
        })
    }
}

impl FlatNetlist {
    /// Resolves a dotted full signal path (`top.u0.sum_1`) to its
    /// dense slot index, if the signal exists.
    pub fn lookup(&self, full_path: &str) -> Option<usize> {
        self.index.get(full_path).copied()
    }

    /// All flattened signal paths, in declaration order.
    pub fn signal_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Width in bits of the signal at `slot`.
    pub fn signal_width(&self, slot: usize) -> u32 {
        self.widths[slot]
    }

    /// Whether the signal at `slot` is a register.
    pub fn is_register(&self, slot: usize) -> bool {
        self.is_reg[slot]
    }

    /// Number of combinational definitions in the compiled def graph.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }
}

/// Extracts one minimal combinational cycle from the residual def
/// graph Kahn's algorithm could not order. `indegree` is the residual
/// indegree (nonzero exactly for unordered defs); `preds`/`dependents`
/// are the full def-graph adjacency.
///
/// Every residual def has at least one residual predecessor (edges
/// from ordered defs were consumed), so walking predecessors must
/// revisit a def — that def lies on a cycle. A BFS along residual
/// dependent edges then finds the *shortest* cycle through it. The
/// returned def-index path closes on itself (first element repeated
/// at the end); a self-loop yields `[d, d]`.
fn minimal_cycle(
    indegree: &[usize],
    preds: &[Vec<usize>],
    dependents: &[Vec<usize>],
) -> Vec<usize> {
    let n = indegree.len();
    let residual: Vec<bool> = indegree.iter().map(|&d| d > 0).collect();
    let start = (0..n).find(|&i| residual[i]).expect("residual def exists");

    // Predecessor walk to land on a def that is on a cycle.
    let mut seen = vec![false; n];
    let mut cur = start;
    let anchor = loop {
        if seen[cur] {
            break cur;
        }
        seen[cur] = true;
        cur = *preds[cur]
            .iter()
            .find(|&&p| residual[p])
            .expect("residual def has a residual predecessor");
    };

    // BFS from the anchor along residual dependent edges; the first
    // path back to the anchor is a shortest cycle through it.
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(anchor);
    while let Some(v) = queue.pop_front() {
        for &w in &dependents[v] {
            if !residual[w] {
                continue;
            }
            if w == anchor {
                // Reconstruct anchor → … → v from the BFS parents
                // (walked sink-to-source, so reversed), then close the
                // cycle on the anchor. A self-loop yields [d, d].
                let mut middle = Vec::new();
                let mut node = v;
                while node != anchor {
                    middle.push(node);
                    node = parent[node];
                }
                middle.reverse();
                let mut path = Vec::with_capacity(middle.len() + 2);
                path.push(anchor);
                path.extend(middle);
                path.push(anchor);
                return path;
            }
            if parent[w] == usize::MAX {
                parent[w] = v;
                queue.push_back(w);
            }
        }
    }
    unreachable!("anchor def is on a residual cycle");
}

/// Register in tree form, before bytecode lowering.
struct RawReg {
    sig: usize,
    next: Option<CExpr>,
    init: Option<Bits>,
}

/// Write port in tree form, before bytecode lowering.
struct RawWrite {
    mem: usize,
    addr: CExpr,
    data: CExpr,
    en: CExpr,
}

struct Builder<'a> {
    circuit: &'a Circuit,
    names: Vec<String>,
    index: HashMap<String, usize>,
    widths: Vec<u32>,
    raw_defs: Vec<(usize, CExpr)>,
    raw_regs: Vec<RawReg>,
    mems: Vec<MemState>,
    mem_index: HashMap<String, usize>,
    raw_writes: Vec<RawWrite>,
}

impl Builder<'_> {
    fn declare(&mut self, full: &str, width: u32) -> usize {
        if let Some(&i) = self.index.get(full) {
            return i;
        }
        let i = self.names.len();
        self.names.push(full.to_owned());
        self.index.insert(full.to_owned(), i);
        self.widths.push(width);
        i
    }

    /// Pass A: declare every signal of `module` (and children) under
    /// `prefix`.
    fn declare_module(&mut self, module: &hgf_ir::Module, prefix: &str) {
        let table = module.signal_table(self.circuit);
        // Declare in sorted order: `signal_table` is a HashMap, and
        // letting its iteration order pick slot numbers would give two
        // builds of the same circuit different signal ids — breaking
        // the documented cross-build stability of `SignalId` (and with
        // it snapshot portability between identically-built backends).
        let mut names: Vec<&String> = table.keys().collect();
        names.sort();
        for name in names {
            let (width, kind) = &table[name];
            // Instance ports are declared by the child walk.
            if *kind == SignalKind::InstancePort {
                continue;
            }
            self.declare(&format!("{prefix}.{name}"), *width);
        }
        for stmt in &module.stmts {
            match stmt {
                Stmt::Mem {
                    name, width, depth, ..
                } => {
                    let full = format!("{prefix}.{name}");
                    let idx = self.mems.len();
                    self.mems.push(MemState {
                        width: *width,
                        words: vec![Bits::zero(*width); *depth as usize],
                    });
                    self.mem_index.insert(full, idx);
                }
                Stmt::Instance {
                    name, module: m, ..
                } => {
                    let child = self.circuit.module(m).expect("validated");
                    self.declare_module(child, &format!("{prefix}.{name}"));
                }
                _ => {}
            }
        }
    }

    /// Pass B: compile definitions, registers, memory ports.
    fn collect_module(
        &mut self,
        module: &hgf_ir::Module,
        prefix: &str,
        hier: &mut HierNode,
    ) -> Result<(), SimError> {
        for p in &module.ports {
            hier.signals.push(p.name.clone());
        }
        let compile = |b: &Builder<'_>, e: &Expr| -> Result<CExpr, SimError> {
            compile_expr(e, prefix, &b.index, &b.mem_index)
        };
        // Register names for next-value routing.
        let regs: HashMap<&str, (Option<Bits>,)> = module
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Reg { name, init, .. } => Some((name.as_str(), (init.clone(),))),
                _ => None,
            })
            .collect();
        for stmt in &module.stmts {
            match stmt {
                Stmt::Wire { name, .. } | Stmt::Reg { name, .. } => {
                    hier.signals.push(name.clone());
                }
                Stmt::Node { name, expr, .. } => {
                    hier.signals.push(name.clone());
                    let sig = self.index[&format!("{prefix}.{name}")];
                    let ce = compile(self, expr)?;
                    self.raw_defs.push((sig, ce));
                }
                Stmt::Connect { target, expr, .. } => {
                    let ce = compile(self, expr)?;
                    if regs.contains_key(target.as_str()) {
                        // Deferred: attach as the register's next.
                        let sig = self.index[&format!("{prefix}.{target}")];
                        if let Some(r) = self.raw_regs.iter_mut().find(|r| r.sig == sig) {
                            r.next = Some(ce);
                        } else {
                            self.raw_regs.push(RawReg {
                                sig,
                                next: Some(ce),
                                init: regs[target.as_str()].0.clone(),
                            });
                        }
                    } else {
                        let sig = self.index[&format!("{prefix}.{target}")];
                        self.raw_defs.push((sig, ce));
                    }
                }
                Stmt::MemRead {
                    mem, name, addr, ..
                } => {
                    hier.signals.push(name.clone());
                    let sig = self.index[&format!("{prefix}.{name}")];
                    let midx = self.mem_index[&format!("{prefix}.{mem}")];
                    let addr = compile(self, addr)?;
                    self.raw_defs
                        .push((sig, CExpr::MemRead(midx, Box::new(addr))));
                }
                Stmt::MemWrite {
                    mem,
                    addr,
                    data,
                    en,
                    ..
                } => {
                    let midx = self.mem_index[&format!("{prefix}.{mem}")];
                    let w = RawWrite {
                        mem: midx,
                        addr: compile(self, addr)?,
                        data: compile(self, data)?,
                        en: compile(self, en)?,
                    };
                    self.raw_writes.push(w);
                }
                Stmt::Instance {
                    name, module: m, ..
                } => {
                    let child = self.circuit.module(m).expect("validated");
                    let mut child_hier = HierNode::new(name.clone());
                    self.collect_module(child, &format!("{prefix}.{name}"), &mut child_hier)?;
                    hier.children.push(child_hier);
                }
                Stmt::Mem { .. } | Stmt::When { .. } => {}
            }
        }
        // Registers with no connect (hold forever). Sorted: `regs` is
        // a HashMap and the resulting `raw_regs` order must not vary
        // between builds of the same circuit.
        let mut held: Vec<_> = regs.into_iter().collect();
        held.sort_by(|a, b| a.0.cmp(b.0));
        for (name, (init,)) in held {
            let sig = self.index[&format!("{prefix}.{name}")];
            if !self.raw_regs.iter().any(|r| r.sig == sig) {
                self.raw_regs.push(RawReg {
                    sig,
                    next: None,
                    init,
                });
            } else if let Some(r) = self.raw_regs.iter_mut().find(|r| r.sig == sig) {
                // Ensure init recorded even when the connect was seen
                // first.
                if r.init.is_none() {
                    r.init = init;
                }
            }
        }
        Ok(())
    }
}

fn compile_expr(
    e: &Expr,
    prefix: &str,
    index: &HashMap<String, usize>,
    _mem_index: &HashMap<String, usize>,
) -> Result<CExpr, SimError> {
    Ok(match e {
        Expr::Lit(b) => CExpr::Lit(b.clone()),
        Expr::Ref(name) => {
            let full = format!("{prefix}.{name}");
            let i = index.get(&full).ok_or(SimError::UnknownSignal(full))?;
            CExpr::Sig(*i)
        }
        Expr::Unary(op, e) => {
            CExpr::Unary(*op, Box::new(compile_expr(e, prefix, index, _mem_index)?))
        }
        Expr::Binary(op, l, r) => CExpr::Binary(
            *op,
            Box::new(compile_expr(l, prefix, index, _mem_index)?),
            Box::new(compile_expr(r, prefix, index, _mem_index)?),
        ),
        Expr::Mux(s, t, el) => CExpr::Mux(
            Box::new(compile_expr(s, prefix, index, _mem_index)?),
            Box::new(compile_expr(t, prefix, index, _mem_index)?),
            Box::new(compile_expr(el, prefix, index, _mem_index)?),
        ),
        Expr::Slice(e, hi, lo) => CExpr::Slice(
            Box::new(compile_expr(e, prefix, index, _mem_index)?),
            *hi,
            *lo,
        ),
        Expr::Cat(h, l) => CExpr::Cat(
            Box::new(compile_expr(h, prefix, index, _mem_index)?),
            Box::new(compile_expr(l, prefix, index, _mem_index)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgf_ir::{Module, Port, SourceLoc, StmtId};

    fn loc() -> SourceLoc {
        SourceLoc::new("t.rs", 1, 1)
    }

    fn connect(id: u32, target: &str, expr: Expr) -> Stmt {
        Stmt::Connect {
            id: StmtId(id),
            target: target.into(),
            expr,
            loc: loc(),
        }
    }

    fn wire(id: u32, name: &str) -> Stmt {
        Stmt::Wire {
            id: StmtId(id),
            name: name.into(),
            width: 8,
            loc: loc(),
        }
    }

    /// The loop diagnostic names exactly the cycle — not the logic
    /// merely downstream of it, which the old residual-indegree dump
    /// implicated.
    #[test]
    fn loop_diagnostic_is_one_minimal_cycle() {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: hgf_ir::PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: hgf_ir::PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        // 3-cycle x -> y -> z -> x, with d1/d2/out strictly downstream.
        m.stmts = vec![
            wire(1, "x"),
            wire(2, "y"),
            wire(3, "z"),
            wire(4, "d1"),
            wire(5, "d2"),
            connect(6, "x", Expr::var("y")),
            connect(7, "y", Expr::var("z")),
            connect(8, "z", Expr::var("x")),
            connect(9, "d1", Expr::var("x")),
            connect(10, "d2", Expr::var("d1")),
            connect(11, "out", Expr::var("d2")),
        ];
        let circuit = Circuit::new("m", vec![m]);
        let err = FlatNetlist::build(&circuit).expect_err("cyclic");
        let SimError::CombinationalLoop(path) = err else {
            panic!("expected loop, got {err:?}");
        };
        // Closed on itself, length 4 (three hops + repeat), and only
        // the true cycle members appear.
        assert_eq!(path.len(), 4, "{path:?}");
        assert_eq!(path.first(), path.last());
        let mut members: Vec<&str> = path[..3].iter().map(String::as_str).collect();
        members.sort_unstable();
        assert_eq!(members, ["m.x", "m.y", "m.z"]);
    }

    /// A self-feeding def reports the two-element closed path.
    #[test]
    fn self_loop_reported_as_closed_pair() {
        let mut m = Module::new("m", loc());
        m.ports = vec![Port {
            name: "out".into(),
            dir: hgf_ir::PortDir::Output,
            width: 8,
            loc: loc(),
        }];
        m.stmts = vec![
            wire(1, "s"),
            connect(2, "s", Expr::var("s")),
            connect(3, "out", Expr::var("s")),
        ];
        let circuit = Circuit::new("m", vec![m]);
        let err = FlatNetlist::build(&circuit).expect_err("cyclic");
        let SimError::CombinationalLoop(path) = err else {
            panic!("expected loop, got {err:?}");
        };
        assert_eq!(path, vec!["m.s".to_string(), "m.s".to_string()]);
    }
}
