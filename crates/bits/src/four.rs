//! Four-state (`0`/`1`/`x`/`z`) bit vectors.
//!
//! [`Bits4`] pairs a two-state value plane with an *unknown mask*: a set
//! mask bit means the corresponding value bit is not a real `0`/`1`.
//! Among unknown bits, a set value bit reads as `x` (unknown driven) and
//! a clear one as `z` (undriven/high-impedance). All operations
//! *normalize* their result to X-form — every unknown result bit has its
//! value bit set — so `z` survives only in parsed literals and explicit
//! [`Bits4::all_z`] constructions; any computation collapses it to `x`,
//! matching IEEE-1800 §11.4's treatment of `z` operands.
//!
//! The two planes are plain [`Bits`], so narrow four-state values stay
//! allocation-free exactly like their two-state counterparts, and a
//! fully-known `Bits4` is just a `Bits` plus an inline all-zero mask.
//! The 2-state simulator never constructs this type on its hot path.
//!
//! # Examples
//!
//! ```
//! use bits::{Bits, Bits4};
//!
//! let x = Bits4::all_x(8);
//! let zero = Bits4::known(Bits::zero(8));
//! // Known-0 dominates AND even against unknown bits.
//! assert!(x.and(&zero).is_fully_known());
//! // But X | 0 stays X.
//! assert!(!x.or(&zero).is_fully_known());
//! ```

use core::fmt;

use crate::parse::{from_digits, scan_literal, split_radix, ParseBitsError};
use crate::Bits;

/// An arbitrary-width four-state bit vector: a value plane plus an
/// unknown mask, both of the same width.
///
/// Invariants:
/// * both planes have the same width
/// * results of operations are in X-form (unknown bits read as `x`, i.e.
///   the value bit is set wherever the mask bit is); only constructors
///   ([`Bits4::from_planes`], [`Bits4::all_z`], [`Bits4::parse`]) can
///   introduce `z` bits
///
/// Equality is plane-wise: `x != z`, and an unknown bit never equals a
/// known one. That makes an X→known transition an ordinary value change,
/// which is exactly what watchpoint edge detection needs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits4 {
    val: Bits,
    unk: Bits,
}

impl Bits4 {
    /// Wraps a fully-known two-state value.
    pub fn known(val: Bits) -> Self {
        let unk = Bits::zero(val.width());
        Bits4 { val, unk }
    }

    /// Builds a value from explicit planes. Not normalized: mask bits
    /// with a clear value bit are `z`.
    ///
    /// # Panics
    ///
    /// Panics if the planes' widths differ.
    pub fn from_planes(val: Bits, unk: Bits) -> Self {
        assert!(
            val.width() == unk.width(),
            "Bits4 plane widths differ ({} vs {})",
            val.width(),
            unk.width()
        );
        Bits4 { val, unk }
    }

    /// All bits `x` (the power-up value of an unreset register).
    pub fn all_x(width: u32) -> Self {
        Bits4 {
            val: Bits::ones(width),
            unk: Bits::ones(width),
        }
    }

    /// All bits `z` (an undriven net).
    pub fn all_z(width: u32) -> Self {
        Bits4 {
            val: Bits::zero(width),
            unk: Bits::ones(width),
        }
    }

    /// A fully-known all-zero value.
    pub fn zero(width: u32) -> Self {
        Bits4::known(Bits::zero(width))
    }

    /// A 1-bit `x`, the result width of comparisons on unknown operands.
    fn x1() -> Self {
        Bits4::all_x(1)
    }

    /// The width in bits. Always at least 1.
    #[inline]
    pub fn width(&self) -> u32 {
        self.val.width()
    }

    /// The value plane. Unknown bits read as `1` (`x`) or `0` (`z`).
    #[inline]
    pub fn value(&self) -> &Bits {
        &self.val
    }

    /// The unknown mask: a set bit means `x` or `z` at that position.
    #[inline]
    pub fn unknown(&self) -> &Bits {
        &self.unk
    }

    /// Whether every bit is a real `0`/`1`.
    #[inline]
    pub fn is_fully_known(&self) -> bool {
        self.unk.is_zero()
    }

    /// The two-state value, when fully known.
    #[inline]
    pub fn to_known(&self) -> Option<&Bits> {
        if self.is_fully_known() {
            Some(&self.val)
        } else {
            None
        }
    }

    /// Three-valued truthiness: `Some(true)` if any bit is a known `1`
    /// (the rest cannot make the value zero), `Some(false)` if every bit
    /// is a known `0`, `None` (i.e. `x`) otherwise.
    pub fn truthiness(&self) -> Option<bool> {
        if self.val.and(&self.unk.not()).any() {
            Some(true)
        } else if self.unk.is_zero() {
            Some(false)
        } else {
            None
        }
    }

    /// Whether the value is a *known* nonzero — the semantics used for
    /// breakpoint/watchpoint conditions: an `x` condition does not fire.
    #[inline]
    pub fn is_truthy_known(&self) -> bool {
        self.truthiness() == Some(true)
    }

    /// The four-state character of the bit at `index` (LSB = 0):
    /// `'0'`, `'1'`, `'x'` or `'z'`. Used by VCD emission.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn bit_char(&self, index: u32) -> char {
        match (self.unk.bit(index), self.val.bit(index)) {
            (false, false) => '0',
            (false, true) => '1',
            (true, false) => 'z',
            (true, true) => 'x',
        }
    }

    /// X-form normalization of a raw result plane pair: force unknown
    /// bits to read as `x`.
    #[inline]
    fn norm(val: Bits, unk: Bits) -> Bits4 {
        Bits4 {
            val: val.or(&unk),
            unk,
        }
    }

    /// Shared shape for strict arithmetic ops: any unknown operand bit
    /// poisons the whole result (carry/borrow/partial products spread
    /// unknowns anyway; per-bit precision buys nothing real here).
    fn arith2(&self, other: &Bits4, f: impl Fn(&Bits, &Bits) -> Bits) -> Bits4 {
        if self.is_fully_known() && other.is_fully_known() {
            Bits4::known(f(&self.val, &other.val))
        } else {
            Bits4::all_x(self.width())
        }
    }

    /// Wrapping addition; all-`x` if either operand has unknown bits.
    pub fn add(&self, other: &Bits4) -> Bits4 {
        self.arith2(other, Bits::add)
    }

    /// Wrapping subtraction; all-`x` if either operand has unknown bits.
    pub fn sub(&self, other: &Bits4) -> Bits4 {
        self.arith2(other, Bits::sub)
    }

    /// Wrapping multiplication; all-`x` on unknown operands.
    pub fn mul(&self, other: &Bits4) -> Bits4 {
        self.arith2(other, Bits::mul)
    }

    /// Unsigned division; all-`x` on unknown operands.
    pub fn div(&self, other: &Bits4) -> Bits4 {
        self.arith2(other, Bits::div)
    }

    /// Unsigned remainder; all-`x` on unknown operands.
    pub fn rem(&self, other: &Bits4) -> Bits4 {
        self.arith2(other, Bits::rem)
    }

    /// Two's-complement negation; all-`x` on unknown operands.
    pub fn neg(&self) -> Bits4 {
        if self.is_fully_known() {
            Bits4::known(self.val.neg())
        } else {
            Bits4::all_x(self.width())
        }
    }

    /// Bitwise NOT: known bits invert, unknown bits stay `x`.
    pub fn not(&self) -> Bits4 {
        Bits4::norm(self.val.not(), self.unk.clone())
    }

    /// Bitwise AND with known-`0` dominance: `0 & x == 0`.
    pub fn and(&self, other: &Bits4) -> Bits4 {
        // A result bit is a known 0 wherever either operand bit is a
        // known 0, regardless of the other side.
        let known0 = self
            .val
            .or(&self.unk)
            .not()
            .or(&other.val.or(&other.unk).not());
        let unk = self.unk.or(&other.unk).and(&known0.not());
        Bits4::norm(self.val.and(&other.val), unk)
    }

    /// Bitwise OR with known-`1` dominance: `1 | x == 1`.
    pub fn or(&self, other: &Bits4) -> Bits4 {
        let known1 = self
            .val
            .and(&self.unk.not())
            .or(&other.val.and(&other.unk.not()));
        let unk = self.unk.or(&other.unk).and(&known1.not());
        Bits4::norm(self.val.or(&other.val), unk)
    }

    /// Bitwise XOR: any unknown operand bit makes that result bit `x`.
    pub fn xor(&self, other: &Bits4) -> Bits4 {
        let unk = self.unk.or(&other.unk);
        Bits4::norm(self.val.xor(&other.val), unk)
    }

    /// AND-reduction: known `0` if any bit is a known `0`, else `x` if
    /// any bit is unknown, else known `1`.
    pub fn reduce_and(&self) -> Bits4 {
        if self.val.or(&self.unk).not().any() {
            Bits4::known(Bits::from_bool(false))
        } else if !self.unk.is_zero() {
            Bits4::x1()
        } else {
            Bits4::known(Bits::from_bool(true))
        }
    }

    /// OR-reduction: known `1` if any bit is a known `1`, else `x` if
    /// any bit is unknown, else known `0`.
    pub fn reduce_or(&self) -> Bits4 {
        match self.truthiness() {
            Some(v) => Bits4::known(Bits::from_bool(v)),
            None => Bits4::x1(),
        }
    }

    /// XOR-reduction: `x` if any bit is unknown, else the known parity.
    pub fn reduce_xor(&self) -> Bits4 {
        if self.is_fully_known() {
            Bits4::known(self.val.reduce_xor())
        } else {
            Bits4::x1()
        }
    }

    /// Dynamic logical shift left. An unknown shift amount yields
    /// all-`x`; a known one shifts both planes (vacated bits are known
    /// `0`), so unknown bits travel with their positions.
    pub fn shl(&self, amount: &Bits4) -> Bits4 {
        match amount.to_known() {
            Some(a) => Bits4::from_planes(self.val.shl(a), self.unk.shl(a)),
            None => Bits4::all_x(self.width()),
        }
    }

    /// Dynamic logical shift right. Same unknown-amount rule as
    /// [`Bits4::shl`].
    pub fn shr(&self, amount: &Bits4) -> Bits4 {
        match amount.to_known() {
            Some(a) => Bits4::from_planes(self.val.shr(a), self.unk.shr(a)),
            None => Bits4::all_x(self.width()),
        }
    }

    /// Dynamic arithmetic shift right. Sign-filling both planes is
    /// exact: an unknown MSB fills with `x`, a known one with its value.
    pub fn ashr(&self, amount: &Bits4) -> Bits4 {
        match amount.to_known() {
            Some(a) => Bits4::from_planes(self.val.ashr(a), self.unk.ashr(a)),
            None => Bits4::all_x(self.width()),
        }
    }

    /// 1-bit equality with short-circuit on known-differing bits: two
    /// values that differ in any mutually-known position are known
    /// unequal even if other bits are `x` (IEEE-1800 `==` is pessimistic
    /// here; we keep the stronger result because it is sound and it is
    /// what makes `pc == 32'h8` usable as a breakpoint condition before
    /// the whole datapath has resolved).
    pub fn eq_bits(&self, other: &Bits4) -> Bits4 {
        let both_known = self.unk.or(&other.unk).not();
        if self.val.xor(&other.val).and(&both_known).any() {
            Bits4::known(Bits::from_bool(false))
        } else if self.unk.any() || other.unk.any() {
            Bits4::x1()
        } else {
            Bits4::known(Bits::from_bool(true))
        }
    }

    /// 1-bit inequality (negated [`Bits4::eq_bits`]).
    pub fn ne_bits(&self, other: &Bits4) -> Bits4 {
        self.eq_bits(other).not()
    }

    /// Shared shape for ordered comparisons: `x` unless both operands
    /// are fully known.
    fn ord2(&self, other: &Bits4, f: impl Fn(&Bits, &Bits) -> Bits) -> Bits4 {
        if self.is_fully_known() && other.is_fully_known() {
            Bits4::known(f(&self.val, &other.val))
        } else {
            Bits4::x1()
        }
    }

    /// 1-bit unsigned less-than; `x` on unknown operands.
    pub fn lt_unsigned(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::lt_unsigned)
    }

    /// 1-bit unsigned less-or-equal; `x` on unknown operands.
    pub fn le_unsigned(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::le_unsigned)
    }

    /// 1-bit unsigned greater-than; `x` on unknown operands.
    pub fn gt_unsigned(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::gt_unsigned)
    }

    /// 1-bit unsigned greater-or-equal; `x` on unknown operands.
    pub fn ge_unsigned(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::ge_unsigned)
    }

    /// 1-bit signed less-than; `x` on unknown operands.
    pub fn lt_signed(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::lt_signed)
    }

    /// 1-bit signed less-or-equal; `x` on unknown operands.
    pub fn le_signed(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::le_signed)
    }

    /// 1-bit signed greater-than; `x` on unknown operands.
    pub fn gt_signed(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::gt_signed)
    }

    /// 1-bit signed greater-or-equal; `x` on unknown operands.
    pub fn ge_signed(&self, other: &Bits4) -> Bits4 {
        self.ord2(other, Bits::ge_signed)
    }

    /// 2:1 multiplexer. A known select picks an arm outright; an `x`
    /// select merges the arms — bits where both arms agree on a known
    /// value stay known, everything else goes `x` (IEEE-1800 §11.4.11).
    pub fn mux(sel: &Bits4, then_val: &Bits4, else_val: &Bits4) -> Bits4 {
        match sel.truthiness() {
            Some(true) => then_val.clone(),
            Some(false) => else_val.clone(),
            None => Bits4::merge(then_val, else_val),
        }
    }

    /// The arm-merge used by X-select muxes and X-branch evaluation:
    /// agreeing known bits survive, disagreeing or unknown bits go `x`.
    pub fn merge(a: &Bits4, b: &Bits4) -> Bits4 {
        let unk = a.unk.or(&b.unk).or(&a.val.xor(&b.val));
        Bits4::norm(a.val.clone(), unk)
    }

    /// Extracts the inclusive bit range `[lo, hi]`, like [`Bits::slice`].
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Bits4 {
        Bits4 {
            val: self.val.slice(hi, lo),
            unk: self.unk.slice(hi, lo),
        }
    }

    /// Concatenates `self` (high part) with `low`, like [`Bits::concat`].
    pub fn concat(&self, low: &Bits4) -> Bits4 {
        Bits4 {
            val: self.val.concat(&low.val),
            unk: self.unk.concat(&low.unk),
        }
    }

    /// Zero-extends or truncates to `width`; extension bits are known
    /// `0`.
    pub fn resize(&self, width: u32) -> Bits4 {
        Bits4 {
            val: self.val.resize(width),
            unk: self.unk.resize(width),
        }
    }

    /// Sign-extends (or truncates) to `width`. An unknown sign bit
    /// extends as `x` (both planes carry their own MSB, which is exact
    /// in X-form).
    pub fn resize_signed(&self, width: u32) -> Bits4 {
        Bits4 {
            val: self.val.resize_signed(width),
            unk: self.unk.resize_signed(width),
        }
    }

    /// Parses a literal, inferring the width exactly like
    /// [`Bits::parse`], with `x`/`z` digits allowed in binary, octal and
    /// hex literals (`0bx1z0`, `32'hxxxx_beef`). An `x`/`z` hex digit
    /// sets all four bits. Decimal literals accept only all-`x`/all-`z`
    /// digit strings (`8'dx`): there is no per-digit bit alignment to
    /// give a mixed one meaning.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] if the string is not a valid literal.
    pub fn parse(s: &str) -> Result<Bits4, ParseBitsError> {
        let lit = scan_literal(s)?;
        from_digits4(&lit.digits, lit.radix, lit.width)
    }

    /// Parses a literal with an explicit target width (truncating), the
    /// four-state counterpart of [`Bits::parse_with_width`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] if the string is not a valid literal.
    pub fn parse_with_width(s: &str, width: u32) -> Result<Bits4, ParseBitsError> {
        let (digits, radix) = split_radix(s)?;
        from_digits4(digits, radix, width)
    }

    /// The per-digit hex rendering (`'h` form, no prefix), when every
    /// digit group is clean: fully known, all-`x`, or all-`z`. A group
    /// mixing states has no single hex character, so `None` tells the
    /// caller to fall back to binary.
    fn hex_digits(&self) -> Option<String> {
        let w = self.width();
        let mut out = String::new();
        let mut hi = w;
        while hi > 0 {
            let lo = hi.saturating_sub(4);
            let v = self.val.slice(hi - 1, lo);
            let u = self.unk.slice(hi - 1, lo);
            if u.is_zero() {
                out.push(char::from_digit(v.to_u64() as u32, 16)?);
            } else if u.count_ones() == u.width() {
                if v.count_ones() == v.width() {
                    out.push('x');
                } else if v.is_zero() {
                    out.push('z');
                } else {
                    return None;
                }
            } else {
                return None;
            }
            hi = lo;
        }
        Some(out)
    }

    /// The exact per-bit binary rendering, MSB first — one of
    /// `0`/`1`/`x`/`z` per bit (the VCD vector-change alphabet).
    pub fn bin_digits(&self) -> String {
        (0..self.width()).rev().map(|i| self.bit_char(i)).collect()
    }

    /// A lossless literal string that [`Bits4::parse`] accepts:
    /// `{width}'h…` when every nibble is clean, `{width}'b…` otherwise.
    pub fn to_literal(&self) -> String {
        match self.hex_digits() {
            Some(h) => format!("{}'h{}", self.width(), h),
            None => format!("{}'b{}", self.width(), self.bin_digits()),
        }
    }
}

impl fmt::Display for Bits4 {
    /// Known values print like the underlying [`Bits`] (decimal for
    /// ordinary widths); values with unknown bits print as a sized
    /// literal with `x`/`z` digits that round-trips through
    /// [`Bits4::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_known() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "{}", self.to_literal()),
        }
    }
}

impl fmt::Debug for Bits4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_literal())
    }
}

impl From<Bits> for Bits4 {
    fn from(v: Bits) -> Self {
        Bits4::known(v)
    }
}

/// Four-state digit accumulation behind [`Bits4::parse`]. Defers to the
/// two-state path when no `x`/`z` digit is present, so known literals
/// are bit-for-bit what [`Bits::parse`] produces.
fn from_digits4(digits: &str, radix: u32, width: u32) -> Result<Bits4, ParseBitsError> {
    let has_xz = digits.chars().any(|c| matches!(c, 'x' | 'X' | 'z' | 'Z'));
    if !has_xz {
        return Ok(Bits4::known(from_digits(digits, radix, width)?));
    }
    if radix == 10 {
        // Decimal digits have no bit alignment; only the Verilog
        // shorthand "all digits x" / "all digits z" is meaningful.
        if digits.chars().all(|c| matches!(c, 'x' | 'X')) {
            return Ok(Bits4::all_x(width));
        }
        if digits.chars().all(|c| matches!(c, 'z' | 'Z')) {
            return Ok(Bits4::all_z(width));
        }
        return Err(ParseBitsError::new(format!(
            "decimal literal {digits:?} mixes x/z with value digits"
        )));
    }
    let bpd = radix.trailing_zeros(); // 1, 3 or 4 bits per digit
    let digit_ones = Bits::from_u64((1u64 << bpd) - 1, width);
    let mut val = Bits::zero(width);
    let mut unk = Bits::zero(width);
    for ch in digits.chars() {
        val = val.shl_const(bpd);
        unk = unk.shl_const(bpd);
        match ch {
            'x' | 'X' => {
                val = val.or(&digit_ones);
                unk = unk.or(&digit_ones);
            }
            'z' | 'Z' => {
                unk = unk.or(&digit_ones);
            }
            _ => {
                let d = ch.to_digit(radix).ok_or_else(|| {
                    ParseBitsError::new(format!("digit {ch:?} invalid for base {radix}"))
                })?;
                val = val.or(&Bits::from_u64(d as u64, width));
            }
        }
    }
    Ok(Bits4 { val, unk })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64, w: u32) -> Bits4 {
        Bits4::known(Bits::from_u64(v, w))
    }

    #[test]
    fn constructors_and_accessors() {
        let x = Bits4::all_x(8);
        assert_eq!(x.width(), 8);
        assert!(!x.is_fully_known());
        assert_eq!(x.to_known(), None);
        assert_eq!(x.bit_char(0), 'x');
        let z = Bits4::all_z(8);
        assert_eq!(z.bit_char(0), 'z');
        assert_ne!(x, z, "x and z are distinct states");
        let v = k(0b10, 2);
        assert!(v.is_fully_known());
        assert_eq!(v.bit_char(0), '0');
        assert_eq!(v.bit_char(1), '1');
    }

    #[test]
    fn truthiness_three_valued() {
        assert_eq!(k(0, 4).truthiness(), Some(false));
        assert_eq!(k(2, 4).truthiness(), Some(true));
        assert_eq!(Bits4::all_x(4).truthiness(), None);
        // A known 1 anywhere decides the condition even with x around.
        let partial = Bits4::from_planes(Bits::from_u64(0b11, 2), Bits::from_u64(0b10, 2));
        assert_eq!(partial.truthiness(), Some(true));
        assert!(partial.is_truthy_known());
        assert!(!Bits4::all_x(4).is_truthy_known());
    }

    #[test]
    fn and_known_zero_dominates() {
        let x = Bits4::all_x(4);
        assert_eq!(x.and(&k(0, 4)), k(0, 4));
        assert_eq!(x.and(&k(0b0101, 4)).unknown().to_u64(), 0b0101);
        assert_eq!(k(0b1100, 4).and(&k(0b1010, 4)), k(0b1000, 4));
        // z operand behaves as x.
        let r = Bits4::all_z(4).and(&k(0b1111, 4));
        assert_eq!(r, Bits4::all_x(4));
    }

    #[test]
    fn or_known_one_dominates() {
        let x = Bits4::all_x(4);
        assert_eq!(x.or(&k(0b1111, 4)), k(0b1111, 4));
        assert_eq!(x.or(&k(0b0101, 4)).unknown().to_u64(), 0b1010);
        assert_eq!(k(0b1100, 4).or(&k(0b1010, 4)), k(0b1110, 4));
    }

    #[test]
    fn xor_and_not_propagate() {
        let x = Bits4::all_x(4);
        assert_eq!(x.xor(&k(0b1111, 4)), Bits4::all_x(4));
        assert_eq!(x.not(), Bits4::all_x(4), "~x is x, in x-form");
        assert_eq!(k(0b1100, 4).xor(&k(0b1010, 4)), k(0b0110, 4));
        assert_eq!(k(0b1100, 4).not(), k(0b0011, 4));
        assert_eq!(Bits4::all_z(4).not(), Bits4::all_x(4), "~z is x");
    }

    #[test]
    fn arithmetic_poisons() {
        let x = Bits4::all_x(8);
        assert_eq!(k(3, 8).add(&x), Bits4::all_x(8));
        assert_eq!(k(3, 8).add(&k(4, 8)), k(7, 8));
        assert_eq!(x.neg(), Bits4::all_x(8));
        assert_eq!(k(1, 4).neg(), k(0xF, 4));
        assert_eq!(k(42, 8).div(&x), Bits4::all_x(8));
        assert_eq!(k(42, 8).mul(&k(2, 8)), k(84, 8));
    }

    #[test]
    fn reductions() {
        // known 0 kills reduce_and even with x present.
        let half = Bits4::from_planes(Bits::from_u64(0b10, 2), Bits::from_u64(0b10, 2));
        assert_eq!(half.reduce_and(), k(0, 1));
        assert_eq!(Bits4::all_x(3).reduce_and(), Bits4::x1());
        assert_eq!(k(0b111, 3).reduce_and(), k(1, 1));
        // known 1 decides reduce_or.
        let one = Bits4::from_planes(Bits::from_u64(0b11, 2), Bits::from_u64(0b10, 2));
        assert_eq!(one.reduce_or(), k(1, 1));
        assert_eq!(Bits4::all_x(3).reduce_or(), Bits4::x1());
        assert_eq!(k(0, 3).reduce_or(), k(0, 1));
        assert_eq!(Bits4::all_x(3).reduce_xor(), Bits4::x1());
        assert_eq!(k(0b110, 3).reduce_xor(), k(0, 1));
    }

    #[test]
    fn shifts() {
        let v = Bits4::from_planes(Bits::from_u64(0b0011, 4), Bits::from_u64(0b0010, 4));
        let two = k(2, 4);
        let l = v.shl(&two);
        assert_eq!(l.value().to_u64(), 0b1100);
        assert_eq!(l.unknown().to_u64(), 0b1000);
        assert_eq!(l.bit_char(0), '0', "vacated bits are known zero");
        let r = v.shr(&k(1, 4));
        assert_eq!(r.unknown().to_u64(), 0b0001);
        assert_eq!(k(8, 4).shl(&Bits4::all_x(4)), Bits4::all_x(4));
        // ashr with unknown sign fills x; known sign fills the value.
        let top_x = Bits4::from_planes(Bits::from_u64(0b1000, 4), Bits::from_u64(0b1000, 4));
        let a = top_x.ashr(&two);
        assert_eq!(a.unknown().to_u64(), 0b1110);
        let neg = k(0b1000, 4).ashr(&two);
        assert_eq!(neg, k(0b1110, 4));
    }

    #[test]
    fn equality_short_circuits() {
        let mostly_x = Bits4::from_planes(Bits::from_u64(0b1111, 4), Bits::from_u64(0b1110, 4));
        // Low bit known 1 vs known 0 elsewhere-equal: definitely unequal.
        assert_eq!(mostly_x.eq_bits(&k(0b0000, 4)), k(0, 1));
        assert_eq!(mostly_x.ne_bits(&k(0b0000, 4)), k(1, 1));
        // Known bits agree, rest unknown: x.
        assert_eq!(mostly_x.eq_bits(&k(0b0001, 4)), Bits4::x1());
        assert_eq!(k(5, 4).eq_bits(&k(5, 4)), k(1, 1));
        assert_eq!(k(5, 4).ne_bits(&k(5, 4)), k(0, 1));
    }

    #[test]
    fn ordered_comparisons() {
        assert_eq!(k(3, 4).lt_unsigned(&k(5, 4)), k(1, 1));
        assert_eq!(k(3, 4).lt_unsigned(&Bits4::all_x(4)), Bits4::x1());
        assert_eq!(k(0xF, 4).lt_signed(&k(1, 4)), k(1, 1));
        assert_eq!(Bits4::all_x(4).ge_unsigned(&k(0, 4)), Bits4::x1());
    }

    #[test]
    fn mux_merges_on_x_select() {
        let t = k(0b1100, 4);
        let e = k(0b1010, 4);
        assert_eq!(Bits4::mux(&k(1, 1), &t, &e), t);
        assert_eq!(Bits4::mux(&k(0, 1), &t, &e), e);
        let m = Bits4::mux(&Bits4::x1(), &t, &e);
        assert_eq!(m.unknown().to_u64(), 0b0110, "disagreeing bits go x");
        assert_eq!(m.value().to_u64(), 0b1110, "x-form");
        assert_eq!(m.bit_char(3), '1');
        assert_eq!(m.bit_char(0), '0');
        // Merge also x-poisons where an arm is already unknown.
        let m2 = Bits4::mux(&Bits4::x1(), &Bits4::all_x(4), &k(0, 4));
        assert_eq!(m2, Bits4::all_x(4));
    }

    #[test]
    fn slice_concat_resize() {
        let v = Bits4::from_planes(Bits::from_u64(0b1101, 4), Bits::from_u64(0b1000, 4));
        let s = v.slice(3, 2);
        assert_eq!(s.bit_char(1), 'x');
        assert_eq!(s.bit_char(0), '1');
        let c = s.concat(&k(0b0, 1));
        assert_eq!(c.width(), 3);
        assert_eq!(c.bit_char(2), 'x');
        assert_eq!(c.bit_char(0), '0');
        let r = v.resize(6);
        assert_eq!(r.bit_char(5), '0');
        assert_eq!(r.bit_char(3), 'x');
        let rs = v.resize_signed(6);
        assert_eq!(rs.bit_char(5), 'x', "unknown sign extends as x");
        let known_neg = k(0b1000, 4).resize_signed(6);
        assert_eq!(known_neg, k(0b111000, 6));
    }

    #[test]
    fn parse_known_matches_two_state() {
        let a = Bits4::parse("8'hff").unwrap();
        assert_eq!(a, Bits4::known(Bits::parse("8'hff").unwrap()));
        assert_eq!(Bits4::parse("42").unwrap(), k(42, 6));
        assert_eq!(
            Bits4::parse_with_width("0x1ff", 8).unwrap(),
            Bits4::known(Bits::parse_with_width("0x1ff", 8).unwrap())
        );
    }

    #[test]
    fn parse_four_state_literals() {
        let v = Bits4::parse("0bx1z0").unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.bit_char(3), 'x');
        assert_eq!(v.bit_char(2), '1');
        assert_eq!(v.bit_char(1), 'z');
        assert_eq!(v.bit_char(0), '0');

        let h = Bits4::parse("32'hxxxx_beef").unwrap();
        assert_eq!(h.width(), 32);
        assert_eq!(h.slice(15, 0).to_known().unwrap().to_u64(), 0xbeef);
        assert_eq!(h.unknown().to_u64(), 0xffff_0000);
        assert_eq!(h.bit_char(31), 'x');

        let z = Bits4::parse("4'hz").unwrap();
        assert_eq!(z, Bits4::all_z(4));
        assert_eq!(Bits4::parse("8'dx").unwrap(), Bits4::all_x(8));
        assert_eq!(Bits4::parse("x").unwrap(), Bits4::all_x(1));
        assert!(Bits4::parse("12x").is_err(), "mixed decimal rejected");
        assert!(Bits4::parse("0bx2").is_err());
    }

    #[test]
    fn format_round_trips() {
        for s in [
            "0bx1z0",
            "32'hxxxx_beef",
            "4'hz",
            "8'dx",
            "16'hz0x1",
            "7'b1xx01z0",
            "65'hx_ffff_ffff_ffff_fff0",
        ] {
            let v = Bits4::parse(s).unwrap();
            let printed = v.to_literal();
            let back = Bits4::parse(&printed).unwrap();
            assert_eq!(v, back, "round trip {s} via {printed}");
            // Display round-trips too (it prints to_literal for
            // unknown values).
            let shown = format!("{v}");
            assert_eq!(Bits4::parse(&shown).unwrap(), v, "display {shown}");
        }
    }

    #[test]
    fn format_shapes() {
        assert_eq!(format!("{}", k(42, 8)), "42", "known displays as Bits");
        assert_eq!(
            format!("{}", Bits4::parse("32'hxxxx_beef").unwrap()),
            "32'hxxxxbeef"
        );
        assert_eq!(format!("{}", Bits4::parse("0bx1z0").unwrap()), "4'bx1z0");
        assert_eq!(format!("{:?}", Bits4::all_z(4)), "4'hz");
        assert_eq!(format!("{:?}", k(0xbe, 8)), "8'hbe");
        // Partial top nibble stays hex when clean.
        assert_eq!(format!("{:?}", Bits4::all_x(6)), "6'hxx");
    }

    #[test]
    fn equality_detects_x_to_known_edge() {
        // The watchpoint edge: all-x before reset, a known value after.
        let before = Bits4::all_x(8);
        let after = k(0, 8);
        assert_ne!(before, after);
        assert_eq!(before.value(), after.add(&k(0xFF, 8)).value());
    }
}
