//! Parsing of bit-vector literals.
//!
//! Accepts plain decimal (`42`), hex (`0xff`), binary (`0b1010`) and
//! Verilog-sized literals (`8'hff`, `4'b1010`, `16'd1234`). Used by the
//! debugger's conditional-breakpoint expression parser and the VCD reader.

use core::fmt;

use crate::Bits;

/// Error returned when a string is not a valid bit-vector literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitsError {
    message: String,
}

impl ParseBitsError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseBitsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bits literal: {}", self.message)
    }
}

impl std::error::Error for ParseBitsError {}

impl Bits {
    /// Parses a literal with an explicit target width. Values wider than
    /// `width` are truncated.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] if the string is not a valid literal.
    pub fn parse_with_width(s: &str, width: u32) -> Result<Bits, ParseBitsError> {
        let (digits, radix) = split_radix(s)?;
        from_digits(digits, radix, width)
    }

    /// Parses a literal, inferring the width.
    ///
    /// Verilog-sized literals (`8'hff`) carry their width. Unsized hex and
    /// binary literals get 4 bits per hex digit / 1 per binary digit;
    /// unsized decimal literals get the minimal width holding the value
    /// (at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] if the string is not a valid literal.
    pub fn parse(s: &str) -> Result<Bits, ParseBitsError> {
        let lit = scan_literal(s)?;
        from_digits(&lit.digits, lit.radix, lit.width)
    }
}

/// A literal split into its parts: digit characters (underscores
/// removed, `x`/`z` digits allowed — rejected later by the two-state
/// accumulator, accepted by [`crate::Bits4::parse`]), the radix, and
/// the resolved width.
pub(crate) struct Literal {
    pub(crate) digits: String,
    pub(crate) radix: u32,
    pub(crate) width: u32,
}

/// Splits a literal into digits/radix/width, shared by the two-state
/// and four-state parsers. Width inference matches [`Bits::parse`];
/// unsized decimal literals made entirely of `x`/`z` digits resolve to
/// one bit per digit (there is no value to size them by).
pub(crate) fn scan_literal(s: &str) -> Result<Literal, ParseBitsError> {
    if let Some(pos) = s.find('\'') {
        let width: u32 = s[..pos]
            .trim()
            .parse()
            .map_err(|_| ParseBitsError::new(format!("bad width in {s:?}")))?;
        if width == 0 {
            return Err(ParseBitsError::new("width must be at least 1"));
        }
        let rest = &s[pos + 1..];
        let (radix, digits) = match rest.chars().next() {
            Some('h') | Some('H') => (16, &rest[1..]),
            Some('b') | Some('B') => (2, &rest[1..]),
            Some('d') | Some('D') => (10, &rest[1..]),
            Some('o') | Some('O') => (8, &rest[1..]),
            _ => return Err(ParseBitsError::new(format!("bad base in {s:?}"))),
        };
        let clean: String = digits.chars().filter(|c| *c != '_').collect();
        if clean.is_empty() {
            return Err(ParseBitsError::new("empty literal"));
        }
        return Ok(Literal {
            digits: clean,
            radix,
            width,
        });
    }
    let (digits, radix) = split_radix(s)?;
    let clean: String = digits.chars().filter(|c| *c != '_').collect();
    if clean.is_empty() {
        return Err(ParseBitsError::new("empty literal"));
    }
    let width = match radix {
        16 => (clean.len() as u32) * 4,
        2 => clean.len() as u32,
        8 => (clean.len() as u32) * 3,
        _ => {
            if clean.chars().all(|c| matches!(c, 'x' | 'X' | 'z' | 'Z')) {
                clean.len() as u32
            } else {
                let v: u128 = clean
                    .parse()
                    .map_err(|_| ParseBitsError::new(format!("bad decimal {s:?}")))?;
                (128 - v.leading_zeros()).max(1)
            }
        }
    };
    Ok(Literal {
        digits: clean,
        radix,
        width,
    })
}

pub(crate) fn split_radix(s: &str) -> Result<(&str, u32), ParseBitsError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseBitsError::new("empty literal"));
    }
    if let Some(rest) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Ok((rest, 16))
    } else if let Some(rest) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        Ok((rest, 2))
    } else if let Some(rest) = s.strip_prefix("0o").or_else(|| s.strip_prefix("0O")) {
        Ok((rest, 8))
    } else {
        Ok((s, 10))
    }
}

pub(crate) fn from_digits(digits: &str, radix: u32, width: u32) -> Result<Bits, ParseBitsError> {
    let mut acc = Bits::zero(width);
    let radix_b = Bits::from_u64(radix as u64, width);
    let mut seen = false;
    for ch in digits.chars() {
        if ch == '_' {
            continue;
        }
        let d = ch
            .to_digit(radix)
            .ok_or_else(|| ParseBitsError::new(format!("digit {ch:?} invalid for base {radix}")))?;
        acc = acc.mul(&radix_b).add(&Bits::from_u64(d as u64, width));
        seen = true;
    }
    if !seen {
        return Err(ParseBitsError::new("empty literal"));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_decimal() {
        assert_eq!(Bits::parse("42").unwrap().to_u64(), 42);
        assert_eq!(Bits::parse("0").unwrap().width(), 1);
        assert_eq!(Bits::parse("255").unwrap().width(), 8);
    }

    #[test]
    fn parse_hex_and_binary() {
        let h = Bits::parse("0xff").unwrap();
        assert_eq!(h.to_u64(), 0xFF);
        assert_eq!(h.width(), 8);
        let b = Bits::parse("0b1010").unwrap();
        assert_eq!(b.to_u64(), 0b1010);
        assert_eq!(b.width(), 4);
    }

    #[test]
    fn parse_verilog_sized() {
        let v = Bits::parse("8'hff").unwrap();
        assert_eq!(v.to_u64(), 0xFF);
        assert_eq!(v.width(), 8);
        assert_eq!(Bits::parse("4'b1010").unwrap().to_u64(), 0b1010);
        assert_eq!(Bits::parse("16'd1234").unwrap().to_u64(), 1234);
        assert_eq!(Bits::parse("6'o17").unwrap().to_u64(), 0o17);
    }

    #[test]
    fn parse_underscores() {
        assert_eq!(Bits::parse("0xdead_beef").unwrap().to_u64(), 0xDEAD_BEEF);
    }

    #[test]
    fn parse_with_width_truncates() {
        assert_eq!(Bits::parse_with_width("0x1ff", 8).unwrap().to_u64(), 0xFF);
    }

    #[test]
    fn parse_errors() {
        assert!(Bits::parse("").is_err());
        assert!(Bits::parse("0x").is_err());
        assert!(Bits::parse("8'q12").is_err());
        assert!(Bits::parse("0b102").is_err());
        assert!(Bits::parse("0'h1").is_err());
        assert!(Bits::parse("abc").is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = Bits::parse("0b102").unwrap_err();
        assert!(err.to_string().contains("invalid bits literal"));
    }

    #[test]
    fn parse_wide_hex() {
        let v = Bits::parse("0xffffffffffffffffffffffffffffffff_ff").unwrap();
        assert_eq!(v.width(), 136);
        assert_eq!(v.count_ones(), 136);
    }
}
