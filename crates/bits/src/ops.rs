//! Arithmetic, logical, shift, comparison and reduction operations.
//!
//! All two-operand arithmetic requires equal operand widths and produces a
//! result of the same width (wrapping, i.e. modulo `2^width`), matching the
//! semantics of a lowered RTL netlist. Comparisons produce 1-bit results.
//!
//! Every operation has an allocation-free fast path when both operands use
//! the inline (≤64-bit) representation — the dominant case on real
//! netlists and the one the simulator's compiled evaluator hits per
//! signal per cycle. Multi-word values use word-level loops (no per-bit
//! iteration anywhere on the hot path).

use crate::{mask64, Bits};

impl Bits {
    fn assert_same_width(&self, other: &Bits, op: &str) {
        assert!(
            self.width == other.width,
            "{op}: operand widths differ ({} vs {})",
            self.width,
            other.width
        );
    }

    /// Wrapping addition. Operands must have equal widths.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "add");
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return Bits::from_inline(a.wrapping_add(b), self.width);
        }
        let mut out = Bits::zero(self.width);
        let (sw, ow_src) = (self.words(), other.words());
        let ow = out.words_mut();
        let mut carry = 0u64;
        for i in 0..sw.len() {
            let (s1, c1) = sw[i].overflowing_add(ow_src[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            ow[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction (`self - other`). Operands must have equal
    /// widths.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "sub");
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return Bits::from_inline(a.wrapping_sub(b), self.width);
        }
        let mut out = self.clone();
        out.sub_in_place(other);
        out
    }

    /// Word-level borrow-propagating subtraction (`self -= other`).
    fn sub_in_place(&mut self, other: &Bits) {
        debug_assert_eq!(self.width, other.width);
        let ow = other.words();
        let sw = self.words_mut();
        let mut borrow = 0u64;
        for i in 0..sw.len() {
            let (d1, b1) = sw[i].overflowing_sub(ow[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            sw[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.mask_top();
    }

    /// Two's-complement negation in the same width.
    pub fn neg(&self) -> Bits {
        if let Some(v) = self.inline_val() {
            return Bits::from_inline(v.wrapping_neg(), self.width);
        }
        let mut out = Bits::zero(self.width);
        out.sub_in_place(self);
        out
    }

    /// Wrapping multiplication (schoolbook over 64-bit limbs). Operands
    /// must have equal widths; the result is truncated to that width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mul(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "mul");
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return Bits::from_inline(a.wrapping_mul(b), self.width);
        }
        let sw = self.words();
        let ow = other.words();
        let n = sw.len();
        let mut acc = vec![0u128; n + 1];
        for i in 0..n {
            let a = sw[i] as u128;
            if a == 0 {
                continue;
            }
            for j in 0..n - i {
                let b = ow[j] as u128;
                if b == 0 {
                    continue;
                }
                let prod = a * b;
                acc[i + j] += prod & 0xFFFF_FFFF_FFFF_FFFF;
                acc[i + j + 1] += prod >> 64;
            }
        }
        let mut out = Bits::zero(self.width);
        {
            let dst = out.words_mut();
            let mut carry = 0u128;
            for (a, word) in acc.iter().take(n).zip(dst.iter_mut()) {
                let v = a + carry;
                *word = v as u64;
                carry = v >> 64;
            }
        }
        out.mask_top();
        out
    }

    /// Unsigned division (`self / other`). Division by zero yields all
    /// ones (matching common RTL divider conventions rather than X).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn div(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "div");
        if other.is_zero() {
            return Bits::ones(self.width);
        }
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return Bits::from_inline(a / b, self.width);
        }
        self.divmod(other).0
    }

    /// Unsigned remainder (`self % other`). Remainder by zero yields
    /// `self`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn rem(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "rem");
        if other.is_zero() {
            return self.clone();
        }
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return Bits::from_inline(a % b, self.width);
        }
        self.divmod(other).1
    }

    /// Restoring long division on bits, with in-place shift/subtract so
    /// the loop allocates nothing; adequate for simulation widths.
    fn divmod(&self, other: &Bits) -> (Bits, Bits) {
        let mut quot = Bits::zero(self.width);
        let mut rem = Bits::zero(self.width);
        for i in (0..self.width).rev() {
            rem.shl1_in_place();
            if self.bit(i) {
                rem.words_mut()[0] |= 1;
            }
            if rem.cmp_unsigned(other) != core::cmp::Ordering::Less {
                rem.sub_in_place(other);
                quot.set_bit(i, true);
            }
        }
        (quot, rem)
    }

    /// Logical left shift by one, in place.
    fn shl1_in_place(&mut self) {
        let ws = self.words_mut();
        let mut carry = 0u64;
        for w in ws.iter_mut() {
            let next_carry = *w >> 63;
            *w = (*w << 1) | carry;
            carry = next_carry;
        }
        self.mask_top();
    }

    /// Bitwise NOT in the same width.
    pub fn not(&self) -> Bits {
        if let Some(v) = self.inline_val() {
            return Bits::from_inline(!v, self.width);
        }
        let mut out = self.clone();
        for w in out.words_mut() {
            *w = !*w;
        }
        out.mask_top();
        out
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn and(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "and");
        let mut out = self.clone();
        for (o, s) in out.words_mut().iter_mut().zip(other.words().iter()) {
            *o &= s;
        }
        out
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn or(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "or");
        let mut out = self.clone();
        for (o, s) in out.words_mut().iter_mut().zip(other.words().iter()) {
            *o |= s;
        }
        out
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor(&self, other: &Bits) -> Bits {
        self.assert_same_width(other, "xor");
        let mut out = self.clone();
        for (o, s) in out.words_mut().iter_mut().zip(other.words().iter()) {
            *o ^= s;
        }
        out
    }

    /// AND-reduction: 1-bit result, set iff all bits are 1.
    pub fn reduce_and(&self) -> Bits {
        if let Some(v) = self.inline_val() {
            return Bits::from_bool(v == mask64(self.width));
        }
        Bits::from_bool(self.count_ones() == self.width)
    }

    /// OR-reduction: 1-bit result, set iff any bit is 1.
    pub fn reduce_or(&self) -> Bits {
        Bits::from_bool(self.any())
    }

    /// XOR-reduction: 1-bit parity.
    pub fn reduce_xor(&self) -> Bits {
        Bits::from_bool(self.count_ones() % 2 == 1)
    }

    /// Logical shift left by a constant amount; result keeps the width.
    pub fn shl_const(&self, amount: u32) -> Bits {
        if amount >= self.width {
            return Bits::zero(self.width);
        }
        if let Some(v) = self.inline_val() {
            return Bits::from_inline(v << amount, self.width);
        }
        let mut out = Bits::zero(self.width);
        let sw = self.words();
        let word_shift = (amount / 64) as usize;
        let bit = amount % 64;
        {
            let ow = out.words_mut();
            for i in (word_shift..ow.len()).rev() {
                let mut v = sw[i - word_shift] << bit;
                if bit != 0 && i > word_shift {
                    v |= sw[i - word_shift - 1] >> (64 - bit);
                }
                ow[i] = v;
            }
        }
        out.mask_top();
        out
    }

    /// Logical shift right by a constant amount; result keeps the width.
    pub fn shr_const(&self, amount: u32) -> Bits {
        if amount >= self.width {
            return Bits::zero(self.width);
        }
        if let Some(v) = self.inline_val() {
            return Bits::from_inline(v >> amount, self.width);
        }
        let mut out = Bits::zero(self.width);
        let sw = self.words();
        let word_shift = (amount / 64) as usize;
        let bit = amount % 64;
        {
            let ow = out.words_mut();
            let n = sw.len();
            for i in 0..n - word_shift {
                let mut v = sw[i + word_shift] >> bit;
                if bit != 0 && i + word_shift + 1 < n {
                    v |= sw[i + word_shift + 1] << (64 - bit);
                }
                ow[i] = v;
            }
        }
        out
    }

    /// Arithmetic shift right by a constant amount (sign-filling).
    pub fn ashr_const(&self, amount: u32) -> Bits {
        let sign = self.msb();
        if !sign {
            return self.shr_const(amount);
        }
        if amount >= self.width {
            return Bits::ones(self.width);
        }
        let mut out = self.shr_const(amount);
        if amount > 0 {
            // Sign-fill bits (width - amount)..width, word-level.
            out.fill_high(self.width - amount);
        }
        out
    }

    /// Dynamic logical shift left: amount taken from `amount`'s value.
    pub fn shl(&self, amount: &Bits) -> Bits {
        self.shl_const(amount.shift_amount(self.width))
    }

    /// Dynamic logical shift right.
    pub fn shr(&self, amount: &Bits) -> Bits {
        self.shr_const(amount.shift_amount(self.width))
    }

    /// Dynamic arithmetic shift right.
    pub fn ashr(&self, amount: &Bits) -> Bits {
        self.ashr_const(amount.shift_amount(self.width))
    }

    /// Clamps a dynamic shift amount to something harmless (`>= width`
    /// just produces the fully-shifted value).
    fn shift_amount(&self, width: u32) -> u32 {
        if let Some(v) = self.inline_val() {
            return if v >= width as u64 { width } else { v as u32 };
        }
        let v = if self.words().iter().skip(2).any(|&w| w != 0) {
            u128::MAX
        } else {
            self.to_u128()
        };
        if v >= width as u128 {
            width
        } else {
            v as u32
        }
    }

    /// Unsigned comparison.
    pub fn cmp_unsigned(&self, other: &Bits) -> core::cmp::Ordering {
        debug_assert_eq!(self.width, other.width, "cmp_unsigned width mismatch");
        if let (Some(a), Some(b)) = (self.inline_val(), other.inline_val()) {
            return a.cmp(&b);
        }
        let (sw, ow) = (self.words(), other.words());
        for i in (0..sw.len()).rev() {
            match sw[i].cmp(&ow[i]) {
                core::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Signed (two's complement) comparison.
    pub fn cmp_signed(&self, other: &Bits) -> core::cmp::Ordering {
        debug_assert_eq!(self.width, other.width, "cmp_signed width mismatch");
        match (self.msb(), other.msb()) {
            (true, false) => core::cmp::Ordering::Less,
            (false, true) => core::cmp::Ordering::Greater,
            _ => self.cmp_unsigned(other),
        }
    }

    /// 1-bit equality.
    pub fn eq_bits(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) == core::cmp::Ordering::Equal)
    }

    /// 1-bit inequality.
    pub fn ne_bits(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) != core::cmp::Ordering::Equal)
    }

    /// 1-bit unsigned less-than.
    pub fn lt_unsigned(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) == core::cmp::Ordering::Less)
    }

    /// 1-bit unsigned less-or-equal.
    pub fn le_unsigned(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) != core::cmp::Ordering::Greater)
    }

    /// 1-bit unsigned greater-than.
    pub fn gt_unsigned(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) == core::cmp::Ordering::Greater)
    }

    /// 1-bit unsigned greater-or-equal.
    pub fn ge_unsigned(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_unsigned(other) != core::cmp::Ordering::Less)
    }

    /// 1-bit signed less-than.
    pub fn lt_signed(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_signed(other) == core::cmp::Ordering::Less)
    }

    /// 1-bit signed less-or-equal.
    pub fn le_signed(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_signed(other) != core::cmp::Ordering::Greater)
    }

    /// 1-bit signed greater-than.
    pub fn gt_signed(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_signed(other) == core::cmp::Ordering::Greater)
    }

    /// 1-bit signed greater-or-equal.
    pub fn ge_signed(&self, other: &Bits) -> Bits {
        Bits::from_bool(self.cmp_signed(other) != core::cmp::Ordering::Less)
    }

    /// 2:1 multiplexer: `if sel { self } else { other }` where `sel` is
    /// truthy iff nonzero.
    pub fn mux(sel: &Bits, then_val: &Bits, else_val: &Bits) -> Bits {
        if sel.is_truthy() {
            then_val.clone()
        } else {
            else_val.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64, w: u32) -> Bits {
        Bits::from_u64(v, w)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(b(0xFF, 8).add(&b(1, 8)).to_u64(), 0);
        assert_eq!(b(200, 8).add(&b(100, 8)).to_u64(), 44);
    }

    #[test]
    fn add_carries_across_words() {
        let a = Bits::from_u128(u64::MAX as u128, 128);
        let one = Bits::from_u64(1, 128);
        assert_eq!(a.add(&one).to_u128(), 1u128 << 64);
    }

    #[test]
    #[should_panic(expected = "operand widths differ")]
    fn add_width_mismatch_panics() {
        b(1, 8).add(&b(1, 9));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(b(5, 8).sub(&b(7, 8)).to_u64(), 0xFE);
        assert_eq!(b(1, 4).neg().to_u64(), 0xF);
        assert_eq!(Bits::zero(16).neg().to_u64(), 0);
    }

    #[test]
    fn sub_and_neg_wide() {
        let a = Bits::from_u128(1u128 << 100, 128);
        let c = Bits::from_u128(1, 128);
        assert_eq!(a.sub(&c).to_u128(), (1u128 << 100) - 1);
        assert_eq!(c.neg().to_u128(), u128::MAX);
        assert_eq!(Bits::zero(128).neg().to_u128(), 0);
    }

    #[test]
    fn mul_basic_and_wrap() {
        assert_eq!(b(7, 8).mul(&b(6, 8)).to_u64(), 42);
        assert_eq!(b(16, 8).mul(&b(16, 8)).to_u64(), 0);
        assert_eq!(b(0xFFFF, 16).mul(&b(0xFFFF, 16)).to_u64(), 1);
    }

    #[test]
    fn mul_wide() {
        let a = Bits::from_u128(0xFFFF_FFFF_FFFF_FFFF, 128);
        let r = a.mul(&a);
        assert_eq!(
            r.to_u128(),
            0xFFFF_FFFF_FFFF_FFFFu128 * 0xFFFF_FFFF_FFFF_FFFFu128
        );
    }

    #[test]
    fn div_rem() {
        assert_eq!(b(42, 8).div(&b(5, 8)).to_u64(), 8);
        assert_eq!(b(42, 8).rem(&b(5, 8)).to_u64(), 2);
        assert_eq!(b(42, 8).div(&Bits::zero(8)).to_u64(), 0xFF);
        assert_eq!(b(42, 8).rem(&Bits::zero(8)).to_u64(), 42);
    }

    #[test]
    fn div_wide() {
        let a = Bits::from_u128(1u128 << 100, 128);
        let d = Bits::from_u128(3, 128);
        assert_eq!(a.div(&d).to_u128(), (1u128 << 100) / 3);
        assert_eq!(a.rem(&d).to_u128(), (1u128 << 100) % 3);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(b(0b1100, 4).and(&b(0b1010, 4)).to_u64(), 0b1000);
        assert_eq!(b(0b1100, 4).or(&b(0b1010, 4)).to_u64(), 0b1110);
        assert_eq!(b(0b1100, 4).xor(&b(0b1010, 4)).to_u64(), 0b0110);
        assert_eq!(b(0b1100, 4).not().to_u64(), 0b0011);
    }

    #[test]
    fn not_wide_masks_top() {
        let n = Bits::zero(70).not();
        assert_eq!(n.count_ones(), 70);
        assert_eq!(n.not().count_ones(), 0);
    }

    #[test]
    fn reductions() {
        assert_eq!(Bits::ones(7).reduce_and().to_u64(), 1);
        assert_eq!(b(0b110, 3).reduce_and().to_u64(), 0);
        assert_eq!(b(0b110, 3).reduce_or().to_u64(), 1);
        assert_eq!(Bits::zero(3).reduce_or().to_u64(), 0);
        assert_eq!(b(0b110, 3).reduce_xor().to_u64(), 0);
        assert_eq!(b(0b100, 3).reduce_xor().to_u64(), 1);
        assert_eq!(Bits::ones(64).reduce_and().to_u64(), 1);
        assert_eq!(Bits::ones(128).reduce_and().to_u64(), 1);
    }

    #[test]
    fn shifts_const() {
        assert_eq!(b(0b0011, 4).shl_const(2).to_u64(), 0b1100);
        assert_eq!(b(0b1100, 4).shr_const(2).to_u64(), 0b0011);
        assert_eq!(b(0b1100, 4).shl_const(4).to_u64(), 0);
        assert_eq!(b(0b1000, 4).ashr_const(2).to_u64(), 0b1110);
        assert_eq!(b(0b0100, 4).ashr_const(2).to_u64(), 0b0001);
        assert_eq!(b(0b1000, 4).ashr_const(10).to_u64(), 0b1111);
    }

    #[test]
    fn shifts_const_wide() {
        let v = 0x9234_5678_9ABC_DEF0_1122_3344_5566_7788u128; // msb set
        let a = Bits::from_u128(v, 128);
        for amt in [0u32, 1, 17, 63, 64, 65, 100, 127] {
            assert_eq!(a.shl_const(amt).to_u128(), v << amt, "shl {amt}");
            assert_eq!(a.shr_const(amt).to_u128(), v >> amt, "shr {amt}");
            assert_eq!(
                a.ashr_const(amt).to_u128(),
                ((v as i128) >> amt) as u128,
                "ashr {amt} (negative msb)"
            );
        }
        assert_eq!(a.shl_const(128).to_u128(), 0);
        assert_eq!(a.ashr_const(128).to_u128(), u128::MAX);
        let pos = Bits::from_u128(v >> 1, 128);
        assert_eq!(pos.ashr_const(65).to_u128(), (v >> 1) >> 65);
    }

    #[test]
    fn shifts_dynamic() {
        assert_eq!(b(1, 8).shl(&b(3, 4)).to_u64(), 8);
        assert_eq!(b(0x80, 8).shr(&b(7, 4)).to_u64(), 1);
        assert_eq!(b(1, 8).shl(&Bits::from_u64(200, 16)).to_u64(), 0);
        assert_eq!(b(0x80, 8).ashr(&b(3, 4)).to_u64(), 0xF0);
        // A shift amount wider than 128 bits saturates rather than
        // truncating.
        let huge = Bits::ones(192);
        assert_eq!(b(1, 8).shl(&huge).to_u64(), 0);
    }

    #[test]
    fn comparisons_unsigned() {
        assert_eq!(b(3, 8).lt_unsigned(&b(5, 8)).to_u64(), 1);
        assert_eq!(b(5, 8).lt_unsigned(&b(5, 8)).to_u64(), 0);
        assert_eq!(b(5, 8).le_unsigned(&b(5, 8)).to_u64(), 1);
        assert_eq!(b(9, 8).gt_unsigned(&b(5, 8)).to_u64(), 1);
        assert_eq!(b(5, 8).ge_unsigned(&b(5, 8)).to_u64(), 1);
        assert_eq!(b(5, 8).eq_bits(&b(5, 8)).to_u64(), 1);
        assert_eq!(b(5, 8).ne_bits(&b(4, 8)).to_u64(), 1);
    }

    #[test]
    fn comparisons_signed() {
        // 0xFF = -1, 0x01 = 1 in 8 bits.
        assert_eq!(b(0xFF, 8).lt_signed(&b(1, 8)).to_u64(), 1);
        assert_eq!(b(1, 8).gt_signed(&b(0xFF, 8)).to_u64(), 1);
        assert_eq!(b(0x80, 8).lt_signed(&b(0x7F, 8)).to_u64(), 1);
        assert_eq!(b(0xFE, 8).le_signed(&b(0xFF, 8)).to_u64(), 1);
        assert_eq!(b(0xFF, 8).ge_signed(&b(0x80, 8)).to_u64(), 1);
    }

    #[test]
    fn mux_selects() {
        let t = b(1, 8);
        let e = b(2, 8);
        assert_eq!(Bits::mux(&b(1, 1), &t, &e).to_u64(), 1);
        assert_eq!(Bits::mux(&b(0, 1), &t, &e).to_u64(), 2);
        assert_eq!(Bits::mux(&b(2, 4), &t, &e).to_u64(), 1);
    }

    #[test]
    fn cmp_across_words() {
        let a = Bits::from_u128(1u128 << 64, 128);
        let c = Bits::from_u128(u64::MAX as u128, 128);
        assert_eq!(a.cmp_unsigned(&c), core::cmp::Ordering::Greater);
    }
}
