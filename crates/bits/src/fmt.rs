//! `Display`, `Debug`, `LowerHex` and `Binary` formatting for [`Bits`].
//!
//! The `Display` form is decimal for values that fit in 128 bits and hex
//! (with a `0x` prefix) otherwise; debuggers show signal values with this
//! formatting, matching how the paper's IDE displays fetched values.

use core::fmt;

use crate::Bits;

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width() <= 128 {
            write!(f, "{}", self.to_u128())
        } else {
            write!(f, "{:#x}", self)
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width(), self)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        let nibbles = self.width().div_ceil(4) as usize;
        let mut started = false;
        for i in (0..nibbles).rev() {
            let lo = (i as u32) * 4;
            let hi = core::cmp::min(lo + 3, self.width() - 1);
            let nib = self.slice(hi, lo).to_u64();
            if nib != 0 || started || i == 0 {
                started = true;
                write!(f, "{nib:x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0b")?;
        }
        for i in (0..self.width()).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Bits;

    #[test]
    fn display_decimal() {
        assert_eq!(Bits::from_u64(42, 8).to_string(), "42");
        assert_eq!(
            Bits::from_u128(1u128 << 100, 128).to_string(),
            (1u128 << 100).to_string()
        );
    }

    #[test]
    fn debug_verilog_style() {
        assert_eq!(format!("{:?}", Bits::from_u64(0xAB, 8)), "8'hab");
        assert_eq!(format!("{:?}", Bits::zero(1)), "1'h0");
    }

    #[test]
    fn hex_no_leading_zeros_except_zero() {
        assert_eq!(format!("{:x}", Bits::from_u64(0x0A, 16)), "a");
        assert_eq!(format!("{:x}", Bits::zero(16)), "0");
        assert_eq!(format!("{:#x}", Bits::from_u64(0xFF, 8)), "0xff");
    }

    #[test]
    fn hex_wide_value() {
        let b = Bits::from_u128(0xDEAD_BEEF_CAFE_F00D_1234u128, 80);
        assert_eq!(format!("{:x}", b), "deadbeefcafef00d1234");
    }

    #[test]
    fn binary_full_width() {
        assert_eq!(format!("{:b}", Bits::from_u64(0b101, 5)), "00101");
        assert_eq!(format!("{:#b}", Bits::from_u64(0b1, 2)), "0b01");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Bits::default()).is_empty());
    }
}
