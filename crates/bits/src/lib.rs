//! Arbitrary-width bit vectors: two-state [`Bits`] and four-state
//! [`Bits4`].
//!
//! [`Bits`] is the value type used throughout the hgdb reproduction: IR
//! constants, simulator signal values, VCD samples, and the debugger's
//! expression evaluator all operate on it. The representation is two-state
//! (`0`/`1` only) because the paper's breakpoint emulation relies on
//! zero-delay simulation where every signal is fully resolved at each clock
//! edge (§3 of the paper). [`Bits4`] layers an unknown mask on top for the
//! simulator's optional four-state (`x`/`z`) mode; the two-state hot path
//! never touches it.
//!
//! # Representation
//!
//! Values of width ≤ 64 are stored inline as a single `u64` — no heap
//! allocation anywhere in their lifecycle. Wider values use a little-endian
//! `Vec<u64>`. The variant is fully determined by the width, so the derived
//! `Eq`/`Hash` semantics are unchanged from a plain word-vector
//! representation: equal width and equal bit pattern iff equal. This is the
//! property the simulator's compiled evaluation engine relies on to keep
//! the dominant narrow-signal case allocation-free.
//!
//! # Examples
//!
//! ```
//! use bits::Bits;
//!
//! let a = Bits::from_u64(5, 8);
//! let b = Bits::from_u64(7, 8);
//! let sum = a.add(&b);
//! assert_eq!(sum.to_u64(), 12);
//! assert_eq!(sum.width(), 8);
//! ```

mod fmt;
mod four;
mod ops;
mod parse;

pub use four::Bits4;
pub use parse::ParseBitsError;

/// Number of 64-bit words needed to store `width` bits.
#[inline]
pub(crate) fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Backing storage: inline single word for widths ≤ 64, heap vector
/// otherwise. The variant is an invariant of the width, never a
/// run-time choice, so derived comparisons stay canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline(u64),
    Heap(Vec<u64>),
}

/// An arbitrary-width, two-state (binary) bit vector.
///
/// Invariants:
/// * `width >= 1`
/// * widths ≤ 64 store the value inline in one `u64`; wider values hold
///   exactly `ceil(width / 64)` little-endian words on the heap
/// * bits above `width` are always zero
///
/// Arithmetic is modular in the operand width (hardware semantics).
/// Operations that combine two vectors require equal widths; the IR's
/// width-inference pass is responsible for inserting explicit extensions,
/// mirroring FIRRTL's lowering discipline.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    repr: Repr,
}

impl Bits {
    /// Builds an inline value, masking to `width`. Callers guarantee
    /// `width <= 64`.
    #[inline]
    pub(crate) fn from_inline(value: u64, width: u32) -> Self {
        debug_assert!((1..=64).contains(&width));
        Bits {
            width,
            repr: Repr::Inline(value & mask64(width)),
        }
    }

    /// The inline word, when this value has one (width ≤ 64).
    #[inline]
    pub(crate) fn inline_val(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline(v) => Some(*v),
            Repr::Heap(_) => None,
        }
    }

    /// Creates an all-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            Bits {
                width,
                repr: Repr::Inline(0),
            }
        } else {
            Bits {
                width,
                repr: Repr::Heap(vec![0; words_for(width)]),
            }
        }
    }

    /// Creates an all-ones vector of the given width.
    pub fn ones(width: u32) -> Self {
        let mut b = Bits::zero(width);
        for w in b.words_mut() {
            *w = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a vector from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::from_inline(value, width);
        }
        let mut b = Bits::zero(width);
        b.words_mut()[0] = value;
        b
    }

    /// Creates a vector from a `u128`, truncating to `width` bits.
    pub fn from_u128(value: u128, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::from_inline(value as u64, width);
        }
        let mut b = Bits::zero(width);
        {
            let ws = b.words_mut();
            ws[0] = value as u64;
            if ws.len() > 1 {
                ws[1] = (value >> 64) as u64;
            }
        }
        b.mask_top();
        b
    }

    /// Creates a 1-bit vector from a boolean.
    #[inline]
    pub fn from_bool(value: bool) -> Self {
        Bits::from_inline(value as u64, 1)
    }

    /// Creates a vector from an `i64`, sign-extended then truncated to
    /// `width` bits (two's complement).
    pub fn from_i64(value: i64, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::from_inline(value as u64, width);
        }
        let mut b = Bits::zero(width);
        {
            let fill = if value < 0 { u64::MAX } else { 0 };
            let ws = b.words_mut();
            ws[0] = value as u64;
            for w in ws.iter_mut().skip(1) {
                *w = fill;
            }
        }
        b.mask_top();
        b
    }

    /// Creates a vector from little-endian 64-bit words, truncating to
    /// `width`.
    pub fn from_words(words: &[u64], width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::from_inline(words.first().copied().unwrap_or(0), width);
        }
        let mut b = Bits::zero(width);
        for (dst, src) in b.words_mut().iter_mut().zip(words.iter()) {
            *dst = *src;
        }
        b.mask_top();
        b
    }

    /// The width in bits. Always at least 1.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Backing words, little-endian. Bits above `width` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(v) => core::slice::from_ref(v),
            Repr::Heap(v) => v,
        }
    }

    /// Mutable backing words (invariant maintenance is the caller's
    /// job: call [`Bits::mask_top`] after writing the top word).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(v) => core::slice::from_mut(v),
            Repr::Heap(v) => v,
        }
    }

    /// The value as `u64`, ignoring any higher bits.
    #[inline]
    pub fn to_u64(&self) -> u64 {
        match &self.repr {
            Repr::Inline(v) => *v,
            Repr::Heap(v) => v[0],
        }
    }

    /// The value as `u128`, ignoring any higher bits.
    pub fn to_u128(&self) -> u128 {
        let ws = self.words();
        let lo = ws[0] as u128;
        let hi = if ws.len() > 1 {
            (ws[1] as u128) << 64
        } else {
            0
        };
        hi | lo
    }

    /// The value as `i64` interpreting the vector as two's complement in
    /// its own width (widths of 64 or more use the low 64 bits unchanged).
    pub fn to_i64(&self) -> i64 {
        if self.width >= 64 {
            return self.to_u64() as i64;
        }
        let raw = self.to_u64();
        let sign = 1u64 << (self.width - 1);
        if raw & sign != 0 {
            (raw | !(sign | (sign - 1))) as i64
        } else {
            raw as i64
        }
    }

    /// Whether any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => *v != 0,
            Repr::Heap(v) => v.iter().any(|&w| w != 0),
        }
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        !self.any()
    }

    /// Whether the value, viewed as a condition, is truthy (nonzero).
    /// This is the semantics used by breakpoint enable conditions.
    #[inline]
    pub fn is_truthy(&self) -> bool {
        self.any()
    }

    /// The bit at `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn bit(&self, index: u32) -> bool {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        (self.words()[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` in place (internal; callers uphold the
    /// width invariant by construction).
    #[inline]
    pub(crate) fn set_bit(&mut self, index: u32, value: bool) {
        debug_assert!(index < self.width);
        let word = (index / 64) as usize;
        let mask = 1u64 << (index % 64);
        let ws = self.words_mut();
        if value {
            ws[word] |= mask;
        } else {
            ws[word] &= !mask;
        }
    }

    /// Returns a copy with the bit at `index` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn with_bit(&self, index: u32, value: bool) -> Self {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        let mut b = self.clone();
        b.set_bit(index, value);
        b
    }

    /// The most significant bit (the sign bit in signed interpretation).
    #[inline]
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Zero-extends or truncates to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn resize(&self, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::from_inline(self.to_u64(), width);
        }
        let mut b = Bits::zero(width);
        for (dst, src) in b.words_mut().iter_mut().zip(self.words().iter()) {
            *dst = *src;
        }
        b.mask_top();
        b
    }

    /// Sign-extends (or truncates) to `width` using the current MSB.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn resize_signed(&self, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= self.width {
            return self.resize(width);
        }
        let mut b = self.resize(width);
        if self.msb() {
            b.fill_high(self.width);
        }
        b
    }

    /// Sets bits `from..width` to one, a word at a time (sign-fill
    /// shared by [`Bits::resize_signed`] and arithmetic shifts).
    pub(crate) fn fill_high(&mut self, from: u32) {
        debug_assert!(from < self.width);
        let first = (from / 64) as usize;
        let bit = from % 64;
        let ws = self.words_mut();
        ws[first] |= !0u64 << bit;
        for w in ws.iter_mut().skip(first + 1) {
            *w = u64::MAX;
        }
        self.mask_top();
    }

    /// Extracts the inclusive bit range `[lo, hi]` as a new vector of
    /// width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(
            hi < self.width,
            "slice hi ({hi}) out of width {}",
            self.width
        );
        let out_width = hi - lo + 1;
        let ws = self.words();
        let word = (lo / 64) as usize;
        let shift = lo % 64;
        if out_width <= 64 {
            let mut v = ws[word] >> shift;
            if shift != 0 && word + 1 < ws.len() {
                v |= ws[word + 1] << (64 - shift);
            }
            return Bits::from_inline(v, out_width);
        }
        let mut out = Bits::zero(out_width);
        {
            let ow = out.words_mut();
            for (i, o) in ow.iter_mut().enumerate() {
                let src = word + i;
                let mut v = if src < ws.len() { ws[src] >> shift } else { 0 };
                if shift != 0 && src + 1 < ws.len() {
                    v |= ws[src + 1] << (64 - shift);
                }
                *o = v;
            }
        }
        out.mask_top();
        out
    }

    /// Concatenates `self` (high part) with `low` (low part):
    /// `{self, low}` in Verilog notation.
    pub fn concat(&self, low: &Bits) -> Self {
        let width = self.width + low.width;
        if width <= 64 {
            return Bits::from_inline((self.to_u64() << low.width) | low.to_u64(), width);
        }
        let mut out = low.resize(width);
        let word_off = (low.width / 64) as usize;
        let bit = low.width % 64;
        let sw = self.words();
        let ow = out.words_mut();
        for (j, &w) in sw.iter().enumerate() {
            ow[word_off + j] |= w << bit;
            // The spill word exists whenever masked high bits remain;
            // when it doesn't, the shifted-out bits are zero by the
            // width invariant.
            if bit != 0 && word_off + j + 1 < ow.len() {
                ow[word_off + j + 1] |= w >> (64 - bit);
            }
        }
        out.mask_top();
        out
    }

    /// Clears bits above `width` to restore the invariant.
    pub(crate) fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let ws = self.words_mut();
            let last = ws.len() - 1;
            ws[last] &= (1u64 << rem) - 1;
        }
    }
}

/// All-ones mask of the low `width` bits (callers guarantee
/// `1 <= width <= 64`).
#[inline]
pub(crate) fn mask64(width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Default for Bits {
    /// A 1-bit zero.
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_width() {
        let b = Bits::zero(65);
        assert_eq!(b.width(), 65);
        assert_eq!(b.words().len(), 2);
        assert!(b.is_zero());
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn from_u128_round_trip() {
        let v = 0x1234_5678_9ABC_DEF0_1122_3344_5566_7788u128;
        let b = Bits::from_u128(v, 128);
        assert_eq!(b.to_u128(), v);
    }

    #[test]
    fn from_i64_negative_sign_extends() {
        let b = Bits::from_i64(-1, 100);
        assert_eq!(b.count_ones(), 100);
        let c = Bits::from_i64(-2, 8);
        assert_eq!(c.to_u64(), 0xFE);
    }

    #[test]
    fn to_i64_signed_interpretation() {
        assert_eq!(Bits::from_u64(0xFF, 8).to_i64(), -1);
        assert_eq!(Bits::from_u64(0x7F, 8).to_i64(), 127);
        assert_eq!(Bits::from_u64(0x80, 8).to_i64(), -128);
    }

    #[test]
    fn ones_masks_top() {
        let b = Bits::ones(3);
        assert_eq!(b.to_u64(), 0b111);
        let c = Bits::ones(64);
        assert_eq!(c.to_u64(), u64::MAX);
    }

    #[test]
    fn bit_get_set() {
        let b = Bits::zero(70).with_bit(69, true);
        assert!(b.bit(69));
        assert!(!b.bit(68));
        assert!(b.msb());
        let c = b.with_bit(69, false);
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        Bits::zero(8).bit(8);
    }

    #[test]
    fn resize_zero_extend_and_truncate() {
        let b = Bits::from_u64(0xAB, 8);
        assert_eq!(b.resize(16).to_u64(), 0xAB);
        assert_eq!(b.resize(4).to_u64(), 0xB);
    }

    #[test]
    fn resize_signed() {
        let b = Bits::from_u64(0x8, 4); // -8 in 4 bits
        assert_eq!(b.resize_signed(8).to_u64(), 0xF8);
        let c = Bits::from_u64(0x7, 4);
        assert_eq!(c.resize_signed(8).to_u64(), 0x07);
    }

    #[test]
    fn resize_signed_across_word_boundary() {
        let b = Bits::from_u64(0x8000_0000_0000_0000, 64);
        let wide = b.resize_signed(130);
        assert_eq!(wide.width(), 130);
        assert_eq!(wide.count_ones(), 130 - 63);
        assert!(wide.bit(63) && wide.bit(64) && wide.bit(129));
        assert!(!wide.bit(62));
    }

    #[test]
    fn slice_basic() {
        let b = Bits::from_u64(0b1011_0110, 8);
        assert_eq!(b.slice(3, 0).to_u64(), 0b0110);
        assert_eq!(b.slice(7, 4).to_u64(), 0b1011);
        assert_eq!(b.slice(5, 5).to_u64(), 1);
        assert_eq!(b.slice(5, 5).width(), 1);
    }

    #[test]
    fn slice_across_word_boundary() {
        let b = Bits::from_u128(0xF << 62, 70);
        let s = b.slice(65, 62);
        assert_eq!(s.to_u64(), 0xF);
    }

    #[test]
    fn slice_wide_output() {
        let v = 0x1234_5678_9ABC_DEF0_1122_3344_5566_7788u128;
        let b = Bits::from_u128(v, 128);
        let s = b.slice(127, 8);
        assert_eq!(s.width(), 120);
        assert_eq!(s.to_u128(), v >> 8);
        let t = b.slice(100, 3);
        assert_eq!(t.to_u128(), (v >> 3) & ((1u128 << 98) - 1));
    }

    #[test]
    fn concat_basic() {
        let hi = Bits::from_u64(0b101, 3);
        let lo = Bits::from_u64(0b01, 2);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 5);
        assert_eq!(c.to_u64(), 0b10101);
    }

    #[test]
    fn concat_across_word_boundary() {
        let hi = Bits::from_u64(0xABCD, 16);
        let lo = Bits::from_u64(u64::MAX, 60);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 76);
        assert_eq!(c.to_u128(), (0xABCDu128 << 60) | ((1u128 << 60) - 1));
        // Heap-heap concat.
        let w = Bits::from_u128(0x1_0000_0000_0000_0001, 65);
        let c2 = w.concat(&w);
        assert_eq!(c2.width(), 130);
        assert_eq!(c2.slice(64, 0).to_u128(), 0x1_0000_0000_0000_0001);
        assert_eq!(c2.slice(129, 65).to_u128(), 0x1_0000_0000_0000_0001);
    }

    #[test]
    fn default_is_one_bit_zero() {
        let d = Bits::default();
        assert_eq!(d.width(), 1);
        assert!(d.is_zero());
    }

    #[test]
    fn count_ones_wide() {
        let b = Bits::ones(130);
        assert_eq!(b.count_ones(), 130);
    }

    #[test]
    fn truthiness() {
        assert!(Bits::from_u64(2, 4).is_truthy());
        assert!(!Bits::zero(4).is_truthy());
    }

    #[test]
    fn from_words_truncates() {
        let b = Bits::from_words(&[u64::MAX, u64::MAX, u64::MAX], 65);
        assert_eq!(b.count_ones(), 65);
        assert_eq!(b.words().len(), 2);
    }

    #[test]
    fn inline_heap_boundary_equality() {
        // Same numeric value at widths 64 (inline) and 65 (heap) are
        // different values (widths differ), but each representation is
        // internally canonical: equality and hashing agree with the
        // bit pattern.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bits::from_u64(42, 64);
        let b = Bits::from_u128(42, 64);
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(a, Bits::from_u128(42, 65), "widths differ");
        // Crossing the boundary via resize lands back on the inline
        // representation and compares equal.
        assert_eq!(Bits::from_u128(42, 65).resize(64), a);
    }
}
