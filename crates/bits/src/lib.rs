//! Arbitrary-width two-state bit vectors.
//!
//! [`Bits`] is the value type used throughout the hgdb reproduction: IR
//! constants, simulator signal values, VCD samples, and the debugger's
//! expression evaluator all operate on it. The representation is two-state
//! (`0`/`1` only) because the paper's breakpoint emulation relies on
//! zero-delay simulation where every signal is fully resolved at each clock
//! edge (§3 of the paper).
//!
//! # Examples
//!
//! ```
//! use bits::Bits;
//!
//! let a = Bits::from_u64(5, 8);
//! let b = Bits::from_u64(7, 8);
//! let sum = a.add(&b);
//! assert_eq!(sum.to_u64(), 12);
//! assert_eq!(sum.width(), 8);
//! ```

mod fmt;
mod ops;
mod parse;

pub use parse::ParseBitsError;

/// Number of 64-bit words needed to store `width` bits.
#[inline]
pub(crate) fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// An arbitrary-width, two-state (binary) bit vector.
///
/// Invariants:
/// * `width >= 1`
/// * the backing storage holds exactly `ceil(width / 64)` words
/// * bits above `width` are always zero
///
/// Arithmetic is modular in the operand width (hardware semantics).
/// Operations that combine two vectors require equal widths; the IR's
/// width-inference pass is responsible for inserting explicit extensions,
/// mirroring FIRRTL's lowering discipline.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        Bits {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates an all-ones vector of the given width.
    pub fn ones(width: u32) -> Self {
        let mut b = Bits::zero(width);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a vector from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = value;
        b.mask_top();
        b
    }

    /// Creates a vector from a `u128`, truncating to `width` bits.
    pub fn from_u128(value: u128, width: u32) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = value as u64;
        if b.words.len() > 1 {
            b.words[1] = (value >> 64) as u64;
        }
        b.mask_top();
        b
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(value: bool) -> Self {
        Bits::from_u64(value as u64, 1)
    }

    /// Creates a vector from an `i64`, sign-extended then truncated to
    /// `width` bits (two's complement).
    pub fn from_i64(value: i64, width: u32) -> Self {
        let mut b = Bits::zero(width);
        let fill = if value < 0 { u64::MAX } else { 0 };
        b.words[0] = value as u64;
        for w in b.words.iter_mut().skip(1) {
            *w = fill;
        }
        b.mask_top();
        b
    }

    /// Creates a vector from little-endian 64-bit words, truncating to
    /// `width`.
    pub fn from_words(words: &[u64], width: u32) -> Self {
        let mut b = Bits::zero(width);
        for (dst, src) in b.words.iter_mut().zip(words.iter()) {
            *dst = *src;
        }
        b.mask_top();
        b
    }

    /// The width in bits. Always at least 1.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Backing words, little-endian. Bits above `width` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The value as `u64`, ignoring any higher bits.
    #[inline]
    pub fn to_u64(&self) -> u64 {
        self.words[0]
    }

    /// The value as `u128`, ignoring any higher bits.
    pub fn to_u128(&self) -> u128 {
        let lo = self.words[0] as u128;
        let hi = if self.words.len() > 1 {
            (self.words[1] as u128) << 64
        } else {
            0
        };
        hi | lo
    }

    /// The value as `i64` interpreting the vector as two's complement in
    /// its own width (widths of 64 or more use the low 64 bits unchanged).
    pub fn to_i64(&self) -> i64 {
        if self.width >= 64 {
            return self.words[0] as i64;
        }
        let raw = self.words[0];
        let sign = 1u64 << (self.width - 1);
        if raw & sign != 0 {
            (raw | !(sign | (sign - 1))) as i64
        } else {
            raw as i64
        }
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        !self.any()
    }

    /// Whether the value, viewed as a condition, is truthy (nonzero).
    /// This is the semantics used by breakpoint enable conditions.
    #[inline]
    pub fn is_truthy(&self) -> bool {
        self.any()
    }

    /// The bit at `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn bit(&self, index: u32) -> bool {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        (self.words[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Returns a copy with the bit at `index` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn with_bit(&self, index: u32, value: bool) -> Self {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        let mut b = self.clone();
        let word = (index / 64) as usize;
        let mask = 1u64 << (index % 64);
        if value {
            b.words[word] |= mask;
        } else {
            b.words[word] &= !mask;
        }
        b
    }

    /// The most significant bit (the sign bit in signed interpretation).
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Zero-extends or truncates to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn resize(&self, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        let mut b = Bits::zero(width);
        for (dst, src) in b.words.iter_mut().zip(self.words.iter()) {
            *dst = *src;
        }
        b.mask_top();
        b
    }

    /// Sign-extends (or truncates) to `width` using the current MSB.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn resize_signed(&self, width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= self.width {
            return self.resize(width);
        }
        let mut b = self.resize(width);
        if self.msb() {
            for i in self.width..width {
                b = b.with_bit(i, true);
            }
        }
        b
    }

    /// Extracts the inclusive bit range `[lo, hi]` as a new vector of
    /// width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(
            hi < self.width,
            "slice hi ({hi}) out of width {}",
            self.width
        );
        let out_width = hi - lo + 1;
        let mut out = Bits::zero(out_width);
        for i in 0..out_width {
            if self.bit(lo + i) {
                out = out.with_bit(i, true);
            }
        }
        out
    }

    /// Concatenates `self` (high part) with `low` (low part):
    /// `{self, low}` in Verilog notation.
    pub fn concat(&self, low: &Bits) -> Self {
        let width = self.width + low.width;
        let mut out = low.resize(width);
        for i in 0..self.width {
            if self.bit(i) {
                out = out.with_bit(low.width + i, true);
            }
        }
        out
    }

    /// Clears bits above `width` to restore the invariant.
    pub(crate) fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }
}

impl Default for Bits {
    /// A 1-bit zero.
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_width() {
        let b = Bits::zero(65);
        assert_eq!(b.width(), 65);
        assert_eq!(b.words().len(), 2);
        assert!(b.is_zero());
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn from_u128_round_trip() {
        let v = 0x1234_5678_9ABC_DEF0_1122_3344_5566_7788u128;
        let b = Bits::from_u128(v, 128);
        assert_eq!(b.to_u128(), v);
    }

    #[test]
    fn from_i64_negative_sign_extends() {
        let b = Bits::from_i64(-1, 100);
        assert_eq!(b.count_ones(), 100);
        let c = Bits::from_i64(-2, 8);
        assert_eq!(c.to_u64(), 0xFE);
    }

    #[test]
    fn to_i64_signed_interpretation() {
        assert_eq!(Bits::from_u64(0xFF, 8).to_i64(), -1);
        assert_eq!(Bits::from_u64(0x7F, 8).to_i64(), 127);
        assert_eq!(Bits::from_u64(0x80, 8).to_i64(), -128);
    }

    #[test]
    fn ones_masks_top() {
        let b = Bits::ones(3);
        assert_eq!(b.to_u64(), 0b111);
        let c = Bits::ones(64);
        assert_eq!(c.to_u64(), u64::MAX);
    }

    #[test]
    fn bit_get_set() {
        let b = Bits::zero(70).with_bit(69, true);
        assert!(b.bit(69));
        assert!(!b.bit(68));
        assert!(b.msb());
        let c = b.with_bit(69, false);
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        Bits::zero(8).bit(8);
    }

    #[test]
    fn resize_zero_extend_and_truncate() {
        let b = Bits::from_u64(0xAB, 8);
        assert_eq!(b.resize(16).to_u64(), 0xAB);
        assert_eq!(b.resize(4).to_u64(), 0xB);
    }

    #[test]
    fn resize_signed() {
        let b = Bits::from_u64(0x8, 4); // -8 in 4 bits
        assert_eq!(b.resize_signed(8).to_u64(), 0xF8);
        let c = Bits::from_u64(0x7, 4);
        assert_eq!(c.resize_signed(8).to_u64(), 0x07);
    }

    #[test]
    fn slice_basic() {
        let b = Bits::from_u64(0b1011_0110, 8);
        assert_eq!(b.slice(3, 0).to_u64(), 0b0110);
        assert_eq!(b.slice(7, 4).to_u64(), 0b1011);
        assert_eq!(b.slice(5, 5).to_u64(), 1);
        assert_eq!(b.slice(5, 5).width(), 1);
    }

    #[test]
    fn slice_across_word_boundary() {
        let b = Bits::from_u128(0xF << 62, 70);
        let s = b.slice(65, 62);
        assert_eq!(s.to_u64(), 0xF);
    }

    #[test]
    fn concat_basic() {
        let hi = Bits::from_u64(0b101, 3);
        let lo = Bits::from_u64(0b01, 2);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 5);
        assert_eq!(c.to_u64(), 0b10101);
    }

    #[test]
    fn default_is_one_bit_zero() {
        let d = Bits::default();
        assert_eq!(d.width(), 1);
        assert!(d.is_zero());
    }

    #[test]
    fn count_ones_wide() {
        let b = Bits::ones(130);
        assert_eq!(b.count_ones(), 130);
    }

    #[test]
    fn truthiness() {
        assert!(Bits::from_u64(2, 4).is_truthy());
        assert!(!Bits::zero(4).is_truthy());
    }

    #[test]
    fn from_words_truncates() {
        let b = Bits::from_words(&[u64::MAX, u64::MAX, u64::MAX], 65);
        assert_eq!(b.count_ones(), 65);
        assert_eq!(b.words().len(), 2);
    }
}
