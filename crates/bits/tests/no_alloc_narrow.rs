//! Proof of the inline-representation contract: `Bits` operations on
//! widths ≤ 64 perform **zero heap allocations** — the property the
//! simulator's compiled evaluator relies on for its per-cycle hot
//! path. A counting global allocator wraps `System`; the single test
//! in this binary exercises the full operation surface at narrow
//! widths and asserts the counter never moves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bits::Bits;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn narrow_bits_ops_never_allocate() {
    let a = Bits::from_u64(0x1234_5678_9ABC, 48);
    let b = Bits::from_u64(0x0FED_CBA9_8765, 48);
    let sel = Bits::from_bool(true);

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut acc = a.clone();
    for i in 0..256u32 {
        acc = acc.add(&b).sub(&a).xor(&b).and(&a).or(&b).not().neg();
        acc = acc.mul(&b);
        acc = acc.div(&b).add(&acc.rem(&b));
        acc = acc.shl_const(i % 48).or(&a.shr_const(i % 48));
        acc = acc.shl(&b).or(&a.ashr_const(i % 48));
        let narrow = acc.slice(40, 1); // width 39
        acc = narrow.resize(48);
        acc = acc.with_bit(i % 48, i % 2 == 0);
        let lo = acc.slice(23, 0);
        let hi = acc.slice(47, 24);
        acc = hi.concat(&lo);
        let _ = acc.cmp_unsigned(&b);
        let _ = acc.cmp_signed(&b);
        let _ = acc.eq_bits(&b);
        let _ = acc.reduce_and();
        let _ = acc.reduce_or();
        let _ = acc.reduce_xor();
        let _ = acc.count_ones();
        let _ = acc.is_truthy();
        let _ = acc.msb();
        let _ = acc.to_u64();
        let _ = acc.to_i64();
        let _ = Bits::mux(&sel, &acc, &b);
        let _ = acc.resize_signed(64);
        let _ = Bits::from_i64(-(i as i64), 48);
        let _ = Bits::from_u128(u128::from(i), 64);
        let _ = Bits::zero(1).words().len();
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "narrow Bits operations hit the heap {} times",
        after - before
    );
    // The loop actually computed something.
    assert_eq!(acc.width(), 48);
}
