//! Property tests validating `Bits` arithmetic against native `u128`
//! reference semantics for widths up to 128, plus structural invariants
//! for wider vectors.

use bits::Bits;
use proptest::prelude::*;

/// Strategy producing a (width, value-masked-to-width) pair with
/// width in 1..=128.
fn value_and_width() -> impl Strategy<Value = (u32, u128)> {
    (1u32..=128).prop_flat_map(|w| {
        let mask = if w == 128 {
            u128::MAX
        } else {
            (1u128 << w) - 1
        };
        (Just(w), any::<u128>().prop_map(move |v| v & mask))
    })
}

/// Two values sharing one width.
fn two_values() -> impl Strategy<Value = (u32, u128, u128)> {
    (1u32..=128).prop_flat_map(|w| {
        let mask = if w == 128 {
            u128::MAX
        } else {
            (1u128 << w) - 1
        };
        (
            Just(w),
            any::<u128>().prop_map(move |v| v & mask),
            any::<u128>().prop_map(move |v| v & mask),
        )
    })
}

fn mask(w: u32) -> u128 {
    if w == 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #[test]
    fn round_trip_u128((w, v) in value_and_width()) {
        prop_assert_eq!(Bits::from_u128(v, w).to_u128(), v);
    }

    #[test]
    fn add_matches_reference((w, a, b) in two_values()) {
        let got = Bits::from_u128(a, w).add(&Bits::from_u128(b, w)).to_u128();
        prop_assert_eq!(got, a.wrapping_add(b) & mask(w));
    }

    #[test]
    fn sub_matches_reference((w, a, b) in two_values()) {
        let got = Bits::from_u128(a, w).sub(&Bits::from_u128(b, w)).to_u128();
        prop_assert_eq!(got, a.wrapping_sub(b) & mask(w));
    }

    #[test]
    fn mul_matches_reference((w, a, b) in two_values()) {
        let got = Bits::from_u128(a, w).mul(&Bits::from_u128(b, w)).to_u128();
        prop_assert_eq!(got, a.wrapping_mul(b) & mask(w));
    }

    #[test]
    fn div_rem_match_reference((w, a, b) in two_values()) {
        prop_assume!(b != 0);
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        prop_assert_eq!(ba.div(&bb).to_u128(), a / b);
        prop_assert_eq!(ba.rem(&bb).to_u128(), a % b);
    }

    #[test]
    fn div_rem_reconstruct((w, a, b) in two_values()) {
        prop_assume!(b != 0);
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        let q = ba.div(&bb);
        let r = ba.rem(&bb);
        // a == q*b + r and r < b
        let back = q.mul(&bb).add(&r);
        prop_assert_eq!(back.to_u128(), a);
        prop_assert!(r.cmp_unsigned(&bb) == std::cmp::Ordering::Less);
    }

    #[test]
    fn neg_is_zero_minus((w, v) in value_and_width()) {
        let b = Bits::from_u128(v, w);
        prop_assert_eq!(b.neg().to_u128(), v.wrapping_neg() & mask(w));
    }

    #[test]
    fn bitwise_match_reference((w, a, b) in two_values()) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        prop_assert_eq!(ba.and(&bb).to_u128(), a & b);
        prop_assert_eq!(ba.or(&bb).to_u128(), a | b);
        prop_assert_eq!(ba.xor(&bb).to_u128(), a ^ b);
        prop_assert_eq!(ba.not().to_u128(), !a & mask(w));
    }

    #[test]
    fn shifts_match_reference((w, v) in value_and_width(), amt in 0u32..140) {
        let b = Bits::from_u128(v, w);
        let expect_shl = if amt >= w { 0 } else { (v << amt) & mask(w) };
        let expect_shr = if amt >= w { 0 } else { v >> amt };
        prop_assert_eq!(b.shl_const(amt).to_u128(), expect_shl);
        prop_assert_eq!(b.shr_const(amt).to_u128(), expect_shr);
    }

    #[test]
    fn ashr_fills_sign((w, v) in value_and_width(), amt in 0u32..140) {
        let b = Bits::from_u128(v, w);
        let sign = (v >> (w - 1)) & 1 == 1;
        let shifted = b.ashr_const(amt);
        if sign {
            prop_assert!(shifted.msb());
            // top amt bits are ones
            let filled = amt.min(w);
            for i in (w - filled)..w {
                prop_assert!(shifted.bit(i));
            }
        } else if amt >= w {
            prop_assert!(shifted.is_zero());
        } else {
            prop_assert_eq!(shifted.to_u128(), v >> amt);
        }
    }

    #[test]
    fn comparisons_match_reference((w, a, b) in two_values()) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        prop_assert_eq!(ba.lt_unsigned(&bb).is_truthy(), a < b);
        prop_assert_eq!(ba.le_unsigned(&bb).is_truthy(), a <= b);
        prop_assert_eq!(ba.gt_unsigned(&bb).is_truthy(), a > b);
        prop_assert_eq!(ba.ge_unsigned(&bb).is_truthy(), a >= b);
        prop_assert_eq!(ba.eq_bits(&bb).is_truthy(), a == b);
        prop_assert_eq!(ba.ne_bits(&bb).is_truthy(), a != b);
    }

    #[test]
    fn signed_comparison_matches_i128((w, a, b) in two_values()) {
        // Sign-extend both to i128 for the reference.
        let sext = |v: u128| {
            if w == 128 { v as i128 }
            else if (v >> (w - 1)) & 1 == 1 { (v | !mask(w)) as i128 }
            else { v as i128 }
        };
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        prop_assert_eq!(ba.lt_signed(&bb).is_truthy(), sext(a) < sext(b));
        prop_assert_eq!(ba.gt_signed(&bb).is_truthy(), sext(a) > sext(b));
    }

    #[test]
    fn slice_concat_round_trip((w, v) in value_and_width(), cut in 0u32..127) {
        prop_assume!(w >= 2);
        let cut = cut % (w - 1) + 1; // 1..w
        let b = Bits::from_u128(v, w);
        let hi = b.slice(w - 1, cut);
        let lo = b.slice(cut - 1, 0);
        let back = hi.concat(&lo);
        prop_assert_eq!(back.to_u128(), v);
        prop_assert_eq!(back.width(), w);
    }

    #[test]
    fn resize_round_trip((w, v) in value_and_width()) {
        let b = Bits::from_u128(v, w);
        prop_assert_eq!(b.resize(w + 64).resize(w).to_u128(), v);
        // Signed resize preserves the low bits and replicates the MSB.
        let s = b.resize_signed(w + 7);
        prop_assert_eq!(s.slice(w - 1, 0).to_u128(), v);
        for i in w..w + 7 {
            prop_assert_eq!(s.bit(i), b.msb());
        }
    }

    #[test]
    fn parse_display_round_trip((w, v) in value_and_width()) {
        let b = Bits::from_u128(v, w);
        let hex = format!("{}'h{:x}", w, b);
        let parsed = Bits::parse(&hex).unwrap();
        prop_assert_eq!(parsed, b);
    }

    #[test]
    fn reductions_match_reference((w, v) in value_and_width()) {
        let b = Bits::from_u128(v, w);
        prop_assert_eq!(b.reduce_and().is_truthy(), v == mask(w));
        prop_assert_eq!(b.reduce_or().is_truthy(), v != 0);
        prop_assert_eq!(b.reduce_xor().is_truthy(), v.count_ones() % 2 == 1);
    }

    #[test]
    fn wide_vectors_keep_invariants(v in any::<u128>(), extra in 1u32..200) {
        let w = 128 + extra;
        let b = Bits::from_u128(v, w);
        prop_assert_eq!(b.width(), w);
        prop_assert_eq!(b.to_u128(), v);
        // addition with zero is identity at any width
        prop_assert_eq!(b.add(&Bits::zero(w)), b.clone());
        // x ^ x == 0
        prop_assert!(b.xor(&b).is_zero());
        // x + !x == all ones
        prop_assert_eq!(b.add(&b.not()), Bits::ones(w));
    }
}
