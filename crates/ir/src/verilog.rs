//! Verilog emission from Low-form IR.
//!
//! Produces the kind of RTL the paper's Listing 4 shows: flattened
//! control flow, `_T`/`_GEN`-style temporaries, no trace of the
//! generator's intent — exactly why source-level debugging is needed.
//! The emitter renames SSA temporaries to `_T_<n>` and mux chains to
//! `_GEN_<n>` to reproduce the obfuscation of real FIRRTL output.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::stmt::{Circuit, Module, PortDir, Stmt};

/// Emits the whole circuit as Verilog, one `module` per IR module.
///
/// # Panics
///
/// Panics if the circuit is not in Low form (run the pass pipeline
/// first).
pub fn emit_circuit(circuit: &Circuit) -> String {
    circuit.check_low().expect("emit_circuit requires Low form");
    let mut out = String::new();
    for module in &circuit.modules {
        out.push_str(&emit_module(module, circuit));
        out.push('\n');
    }
    out
}

/// Emits a single module.
pub fn emit_module(module: &Module, circuit: &Circuit) -> String {
    let mut out = String::new();
    let obfuscated = obfuscation_map(module);
    let r = |name: &str| -> String {
        obfuscated
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.replace('.', "_"))
    };

    let mut ports: Vec<String> = vec!["input clock".into(), "input reset".into()];
    for p in &module.ports {
        let dir = match p.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        ports.push(format!("{} {}{}", dir, width_decl(p.width), r(&p.name)));
    }
    let _ = writeln!(out, "module {}(", module.name);
    let _ = writeln!(out, "  {}", ports.join(",\n  "));
    let _ = writeln!(out, ");");

    // Declarations.
    for stmt in &module.stmts {
        match stmt {
            Stmt::Wire { name, width, .. } => {
                let _ = writeln!(out, "  wire {}{};", width_decl(*width), r(name));
            }
            Stmt::Reg { name, width, .. } => {
                let _ = writeln!(out, "  reg {}{};", width_decl(*width), r(name));
            }
            Stmt::Node { name, expr, .. } => {
                // Width is recoverable but unnecessary for display; use
                // the computed width when available.
                let w = expr
                    .width(&|n| module.signal_table(circuit).get(n).map(|(w, _)| *w))
                    .unwrap_or(1);
                let _ = writeln!(
                    out,
                    "  wire {}{} = {};",
                    width_decl(w),
                    r(name),
                    emit_expr(expr, &r)
                );
            }
            Stmt::Mem {
                name, width, depth, ..
            } => {
                let _ = writeln!(
                    out,
                    "  reg {}{} [0:{}];",
                    width_decl(*width),
                    r(name),
                    depth - 1
                );
            }
            Stmt::MemRead {
                mem, name, addr, ..
            } => {
                let w = module.mem_width(mem).unwrap_or(1);
                let _ = writeln!(
                    out,
                    "  wire {}{} = {}[{}];",
                    width_decl(w),
                    r(name),
                    r(mem),
                    emit_expr(addr, &r)
                );
            }
            Stmt::Instance {
                name, module: m, ..
            } => {
                let child = circuit.module(m);
                let mut conns = vec![".clock(clock)".to_owned(), ".reset(reset)".to_owned()];
                if let Some(child) = child {
                    for p in &child.ports {
                        conns.push(format!(
                            ".{}({})",
                            p.name.replace('.', "_"),
                            r(&format!("{name}.{}", p.name))
                        ));
                    }
                }
                let _ = writeln!(out, "  {} {}({});", m, name, conns.join(", "));
            }
            _ => {}
        }
    }
    // Instance port nets.
    for (inst, m) in module.instances() {
        if let Some(child) = circuit.module(m) {
            for p in &child.ports {
                let net = format!("{inst}.{}", p.name);
                let _ = writeln!(out, "  wire {}{};", width_decl(p.width), r(&net));
            }
        }
    }

    // Continuous assignments.
    for stmt in &module.stmts {
        if let Stmt::Connect { target, expr, .. } = stmt {
            let is_reg = module
                .stmts
                .iter()
                .any(|s| matches!(s, Stmt::Reg { name, .. } if name == target));
            if !is_reg {
                let _ = writeln!(out, "  assign {} = {};", r(target), emit_expr(expr, &r));
            }
        }
    }

    // Sequential block.
    let mut seq = String::new();
    for stmt in &module.stmts {
        match stmt {
            Stmt::Connect { target, expr, .. } => {
                let reg = module.stmts.iter().find_map(|s| match s {
                    Stmt::Reg { name, init, .. } if name == target => Some(init),
                    _ => None,
                });
                if let Some(init) = reg {
                    if let Some(init) = init {
                        let _ = writeln!(
                            seq,
                            "    if (reset) {} <= {}'h{:x}; else {} <= {};",
                            r(target),
                            init.width(),
                            init,
                            r(target),
                            emit_expr(expr, &r)
                        );
                    } else {
                        let _ = writeln!(seq, "    {} <= {};", r(target), emit_expr(expr, &r));
                    }
                }
            }
            Stmt::MemWrite {
                mem,
                addr,
                data,
                en,
                ..
            } => {
                let _ = writeln!(
                    seq,
                    "    if ({}) {}[{}] <= {};",
                    emit_expr(en, &r),
                    r(mem),
                    emit_expr(addr, &r),
                    emit_expr(data, &r)
                );
            }
            _ => {}
        }
    }
    if !seq.is_empty() {
        let _ = writeln!(out, "  always @(posedge clock) begin");
        out.push_str(&seq);
        let _ = writeln!(out, "  end");
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// SSA temporaries become `_T_<n>` / mux results `_GEN_<n>`, matching
/// FIRRTL's emission style (Listing 4).
fn obfuscation_map(module: &Module) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut t = 0usize;
    let mut g = 0usize;
    for stmt in &module.stmts {
        if let Stmt::Node { name, expr, .. } = stmt {
            // Heuristic: mux chains (when lowering artifacts) become
            // _GEN_, other temporaries _T_. Signals the generator named
            // explicitly (gen_vars) keep their names.
            let user_named = module.gen_vars.iter().any(|(_, rtl)| rtl == name);
            if user_named {
                continue;
            }
            let is_ssa_temp = name.contains('_')
                && name
                    .rsplit('_')
                    .next()
                    .is_some_and(|suffix| suffix.chars().all(|c| c.is_ascii_digit()));
            if !is_ssa_temp {
                continue;
            }
            if matches!(expr, Expr::Mux(..)) {
                map.insert(name.clone(), format!("_GEN_{g}"));
                g += 1;
            } else {
                map.insert(name.clone(), format!("_T_{t}"));
                t += 1;
            }
        }
    }
    map
}

fn width_decl(width: u32) -> String {
    if width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}

fn emit_expr(expr: &Expr, r: &dyn Fn(&str) -> String) -> String {
    match expr {
        Expr::Lit(b) => format!("{}'h{:x}", b.width(), b),
        Expr::Ref(name) => r(name),
        Expr::Unary(op, e) => {
            let tok = match op {
                UnaryOp::Not => "~",
                UnaryOp::Neg => "-",
                UnaryOp::ReduceAnd => "&",
                UnaryOp::ReduceOr => "|",
                UnaryOp::ReduceXor => "^",
            };
            format!("{tok}({})", emit_expr(e, r))
        }
        Expr::Binary(op, l, r_e) => {
            let tok = match op {
                BinaryOp::Lts => "<",
                BinaryOp::Les => "<=",
                BinaryOp::Gts => ">",
                BinaryOp::Ges => ">=",
                BinaryOp::Ashr => ">>>",
                other => other.token(),
            };
            let signed = matches!(
                op,
                BinaryOp::Lts | BinaryOp::Les | BinaryOp::Gts | BinaryOp::Ges
            );
            if signed {
                format!(
                    "($signed({}) {} $signed({}))",
                    emit_expr(l, r),
                    tok,
                    emit_expr(r_e, r)
                )
            } else {
                format!("({} {} {})", emit_expr(l, r), tok, emit_expr(r_e, r))
            }
        }
        Expr::Mux(s, t, e) => format!(
            "({} ? {} : {})",
            emit_expr(s, r),
            emit_expr(t, r),
            emit_expr(e, r)
        ),
        Expr::Slice(e, hi, lo) => {
            if hi == lo {
                format!("{}[{hi}]", emit_expr(e, r))
            } else {
                format!("{}[{hi}:{lo}]", emit_expr(e, r))
            }
        }
        Expr::Cat(h, l) => format!("{{{}, {}}}", emit_expr(h, r), emit_expr(l, r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::source::SourceLoc;
    use crate::stmt::{Port, StmtId};
    use bits::Bits;

    fn loc() -> SourceLoc {
        SourceLoc::new("gen.rs", 1, 1)
    }

    #[test]
    fn emits_counter_module() {
        let mut m = Module::new("counter", loc());
        m.ports = vec![Port {
            name: "out".into(),
            dir: PortDir::Output,
            width: 8,
            loc: loc(),
        }];
        m.stmts = vec![
            Stmt::Reg {
                id: StmtId(1),
                name: "count".into(),
                width: 8,
                init: Some(Bits::zero(8)),
                loc: loc(),
            },
            Stmt::Node {
                id: StmtId(2),
                name: "count_0".into(),
                expr: Expr::binary(
                    crate::expr::BinaryOp::Add,
                    Expr::var("count"),
                    Expr::lit(1, 8),
                ),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "count".into(),
                expr: Expr::var("count_0"),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(4),
                target: "out".into(),
                expr: Expr::var("count"),
                loc: loc(),
            },
        ];
        let c = Circuit::new("counter", vec![m]);
        let v = emit_circuit(&c);
        assert!(v.contains("module counter("));
        assert!(v.contains("reg [7:0] count;"));
        assert!(v.contains("always @(posedge clock)"));
        assert!(v.contains("if (reset) count <= 8'h0;"));
        assert!(v.contains("assign out = count;"));
        // SSA temp is obfuscated.
        assert!(v.contains("_T_0"), "expected _T_0 in:\n{v}");
        assert!(!v.contains("count_0 ="));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn mux_temps_become_gen() {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "c".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "w_1".into(),
                expr: Expr::mux(Expr::var("c"), Expr::lit(1, 8), Expr::lit(2, 8)),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "out".into(),
                expr: Expr::var("w_1"),
                loc: loc(),
            },
        ];
        let c = Circuit::new("m", vec![m]);
        let v = emit_circuit(&c);
        assert!(v.contains("_GEN_0"), "expected _GEN_0 in:\n{v}");
        assert!(v.contains("(c ? 8'h1 : 8'h2)"));
    }

    #[test]
    #[should_panic(expected = "Low form")]
    fn rejects_high_form() {
        let mut m = Module::new("m", loc());
        m.stmts = vec![Stmt::When {
            id: StmtId(1),
            cond: Expr::lit(1, 1),
            then_body: vec![],
            else_body: vec![],
            loc: loc(),
        }];
        emit_circuit(&Circuit::new("m", vec![m]));
    }

    #[test]
    fn signed_compare_uses_dollar_signed() {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 1,
                loc: loc(),
            },
        ];
        m.stmts = vec![Stmt::Connect {
            id: StmtId(1),
            target: "out".into(),
            expr: Expr::binary(crate::expr::BinaryOp::Lts, Expr::var("a"), Expr::lit(0, 8)),
            loc: loc(),
        }];
        let v = emit_circuit(&Circuit::new("m", vec![m]));
        assert!(v.contains("$signed(a) < $signed(8'h0)"));
    }
}
