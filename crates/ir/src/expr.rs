//! IR expressions: pure combinational value computations.
//!
//! Expressions appear as the right-hand side of nodes and connects, as
//! `when` conditions, and — crucially for the debugger — as breakpoint
//! *enable conditions* (§3.1 of the paper). The textual form produced by
//! `Expr::to_string` (via its `Display` impl) is stored in the symbol table's `enable` column
//! and re-parsed by the debugger's expression evaluator.

use std::collections::BTreeSet;
use std::fmt;

use bits::{Bits, Bits4};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise NOT (`~`), result keeps the operand width.
    Not,
    /// Two's-complement negation (`-`).
    Neg,
    /// AND-reduction (`&x`), 1-bit result.
    ReduceAnd,
    /// OR-reduction (`|x`), 1-bit result.
    ReduceOr,
    /// XOR-reduction (`^x`), 1-bit result.
    ReduceXor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Wrapping add; operands and result share a width.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Unsigned divide (x/0 = all ones).
    Div,
    /// Unsigned remainder (x%0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by dynamic amount.
    Shl,
    /// Logical shift right by dynamic amount.
    Shr,
    /// Arithmetic shift right by dynamic amount.
    Ashr,
    /// Equality, 1-bit result.
    Eq,
    /// Inequality, 1-bit result.
    Ne,
    /// Unsigned less-than, 1-bit result.
    Lt,
    /// Unsigned less-or-equal, 1-bit result.
    Le,
    /// Unsigned greater-than, 1-bit result.
    Gt,
    /// Unsigned greater-or-equal, 1-bit result.
    Ge,
    /// Signed less-than, 1-bit result.
    Lts,
    /// Signed less-or-equal, 1-bit result.
    Les,
    /// Signed greater-than, 1-bit result.
    Gts,
    /// Signed greater-or-equal, 1-bit result.
    Ges,
}

impl BinaryOp {
    /// Whether the result is always 1 bit wide.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge | Lts | Les | Gts | Ges)
    }

    /// Whether the right operand width may differ (shift amounts).
    pub fn is_shift(self) -> bool {
        matches!(self, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::Ashr)
    }

    /// The operator's source-level token.
    pub fn token(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            And => "&",
            Or => "|",
            Xor => "^",
            Shl => "<<",
            Shr => ">>",
            Ashr => ">>>",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Lts => "<$",
            Les => "<=$",
            Gts => ">$",
            Ges => ">=$",
        }
    }
}

/// An IR expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Lit(Bits),
    /// A reference to a named signal (port, wire, reg, node, or an
    /// instance port written `inst.port`).
    Ref(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// 2:1 multiplexer `mux(sel, then, else)`; `sel` is 1 bit.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Constant bit slice `expr[hi:lo]`.
    Slice(Box<Expr>, u32, u32),
    /// Concatenation `{high, low}`.
    Cat(Box<Expr>, Box<Expr>),
}

/// Error from width checking or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A referenced signal is not defined.
    UnknownSignal(String),
    /// Operand widths violate the operator's rule.
    WidthMismatch {
        /// Rendered expression for diagnostics.
        expr: String,
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownSignal(s) => write!(f, "unknown signal: {s}"),
            ExprError::WidthMismatch { expr, detail } => {
                write!(f, "width mismatch in {expr}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// A literal from a `u64`.
    pub fn lit(value: u64, width: u32) -> Expr {
        Expr::Lit(Bits::from_u64(value, width))
    }

    /// A signal reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Ref(name.into())
    }

    /// Builds a binary op.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Builds a unary op.
    pub fn unary(op: UnaryOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Builds a mux.
    pub fn mux(sel: Expr, then_e: Expr, else_e: Expr) -> Expr {
        Expr::Mux(Box::new(sel), Box::new(then_e), Box::new(else_e))
    }

    /// Logical negation of a 1-bit expression (used for `otherwise`
    /// branches in enable conditions).
    pub fn logical_not(self) -> Expr {
        Expr::unary(UnaryOp::Not, self)
    }

    /// AND of two 1-bit expressions (condition-stack reduction).
    pub fn logical_and(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, other)
    }

    /// Computes the width, resolving references through `lookup`.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError`] on unknown signals or width-rule violations.
    pub fn width(&self, lookup: &dyn Fn(&str) -> Option<u32>) -> Result<u32, ExprError> {
        match self {
            Expr::Lit(b) => Ok(b.width()),
            Expr::Ref(name) => lookup(name).ok_or_else(|| ExprError::UnknownSignal(name.clone())),
            Expr::Unary(op, e) => {
                let w = e.width(lookup)?;
                Ok(match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    _ => 1,
                })
            }
            Expr::Binary(op, l, r) => {
                let wl = l.width(lookup)?;
                let wr = r.width(lookup)?;
                if !op.is_shift() && wl != wr {
                    return Err(ExprError::WidthMismatch {
                        expr: self.to_string(),
                        detail: format!("{wl} vs {wr} for {}", op.token()),
                    });
                }
                Ok(if op.is_comparison() { 1 } else { wl })
            }
            Expr::Mux(sel, t, e) => {
                let ws = sel.width(lookup)?;
                if ws != 1 {
                    return Err(ExprError::WidthMismatch {
                        expr: self.to_string(),
                        detail: format!("mux selector must be 1 bit, got {ws}"),
                    });
                }
                let wt = t.width(lookup)?;
                let we = e.width(lookup)?;
                if wt != we {
                    return Err(ExprError::WidthMismatch {
                        expr: self.to_string(),
                        detail: format!("mux arms differ: {wt} vs {we}"),
                    });
                }
                Ok(wt)
            }
            Expr::Slice(e, hi, lo) => {
                let w = e.width(lookup)?;
                if hi < lo || *hi >= w {
                    return Err(ExprError::WidthMismatch {
                        expr: self.to_string(),
                        detail: format!("slice [{hi}:{lo}] out of width {w}"),
                    });
                }
                Ok(hi - lo + 1)
            }
            Expr::Cat(h, l) => Ok(h.width(lookup)? + l.width(lookup)?),
        }
    }

    /// Evaluates the expression, resolving references through `lookup`.
    ///
    /// This is the single evaluation semantics shared by the simulator,
    /// the constant-propagation pass and the debugger's enable-condition
    /// evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::UnknownSignal`] if a reference fails to
    /// resolve.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<Bits>) -> Result<Bits, ExprError> {
        match self {
            Expr::Lit(b) => Ok(b.clone()),
            Expr::Ref(name) => lookup(name).ok_or_else(|| ExprError::UnknownSignal(name.clone())),
            Expr::Unary(op, e) => {
                let v = e.eval(lookup)?;
                Ok(match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::ReduceAnd => v.reduce_and(),
                    UnaryOp::ReduceOr => v.reduce_or(),
                    UnaryOp::ReduceXor => v.reduce_xor(),
                })
            }
            Expr::Binary(op, l, r) => {
                let a = l.eval(lookup)?;
                let b = r.eval(lookup)?;
                Ok(apply_binary(*op, &a, &b))
            }
            Expr::Mux(sel, t, e) => {
                let s = sel.eval(lookup)?;
                if s.is_truthy() {
                    t.eval(lookup)
                } else {
                    e.eval(lookup)
                }
            }
            Expr::Slice(e, hi, lo) => Ok(e.eval(lookup)?.slice(*hi, *lo)),
            Expr::Cat(h, l) => {
                let hv = h.eval(lookup)?;
                let lv = l.eval(lookup)?;
                Ok(hv.concat(&lv))
            }
        }
    }

    /// All signal names referenced by this expression, deduplicated.
    pub fn refs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Ref(name) => {
                out.insert(name.clone());
            }
            Expr::Unary(_, e) => e.collect_refs(out),
            Expr::Binary(_, l, r) => {
                l.collect_refs(out);
                r.collect_refs(out);
            }
            Expr::Mux(s, t, e) => {
                s.collect_refs(out);
                t.collect_refs(out);
                e.collect_refs(out);
            }
            Expr::Slice(e, _, _) => e.collect_refs(out),
            Expr::Cat(h, l) => {
                h.collect_refs(out);
                l.collect_refs(out);
            }
        }
    }

    /// Rewrites every reference through `rename` (used by CSE, inlining
    /// and hierarchy flattening).
    pub fn rename_refs(&self, rename: &dyn Fn(&str) -> Option<String>) -> Expr {
        match self {
            Expr::Lit(_) => self.clone(),
            Expr::Ref(name) => match rename(name) {
                Some(new_name) => Expr::Ref(new_name),
                None => self.clone(),
            },
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.rename_refs(rename))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(l.rename_refs(rename)),
                Box::new(r.rename_refs(rename)),
            ),
            Expr::Mux(s, t, e) => Expr::Mux(
                Box::new(s.rename_refs(rename)),
                Box::new(t.rename_refs(rename)),
                Box::new(e.rename_refs(rename)),
            ),
            Expr::Slice(e, hi, lo) => Expr::Slice(Box::new(e.rename_refs(rename)), *hi, *lo),
            Expr::Cat(h, l) => Expr::Cat(
                Box::new(h.rename_refs(rename)),
                Box::new(l.rename_refs(rename)),
            ),
        }
    }

    /// Substitutes whole expressions for references (used by constant
    /// propagation and inlining).
    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Lit(_) => self.clone(),
            Expr::Ref(name) => subst(name).unwrap_or_else(|| self.clone()),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute(subst))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(l.substitute(subst)),
                Box::new(r.substitute(subst)),
            ),
            Expr::Mux(s, t, e) => Expr::Mux(
                Box::new(s.substitute(subst)),
                Box::new(t.substitute(subst)),
                Box::new(e.substitute(subst)),
            ),
            Expr::Slice(e, hi, lo) => Expr::Slice(Box::new(e.substitute(subst)), *hi, *lo),
            Expr::Cat(h, l) => {
                Expr::Cat(Box::new(h.substitute(subst)), Box::new(l.substitute(subst)))
            }
        }
    }

    /// The number of nodes in this expression tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Ref(_) => 1,
            Expr::Unary(_, e) | Expr::Slice(e, _, _) => 1 + e.node_count(),
            Expr::Binary(_, l, r) | Expr::Cat(l, r) => 1 + l.node_count() + r.node_count(),
            Expr::Mux(s, t, e) => 1 + s.node_count() + t.node_count() + e.node_count(),
        }
    }
}

/// Applies a binary operator to concrete values.
pub fn apply_binary(op: BinaryOp, a: &Bits, b: &Bits) -> Bits {
    use BinaryOp::*;
    match op {
        Add => a.add(b),
        Sub => a.sub(b),
        Mul => a.mul(b),
        Div => a.div(b),
        Rem => a.rem(b),
        And => a.and(b),
        Or => a.or(b),
        Xor => a.xor(b),
        Shl => a.shl(b),
        Shr => a.shr(b),
        Ashr => a.ashr(b),
        Eq => a.eq_bits(b),
        Ne => a.ne_bits(b),
        Lt => a.lt_unsigned(b),
        Le => a.le_unsigned(b),
        Gt => a.gt_unsigned(b),
        Ge => a.ge_unsigned(b),
        Lts => a.lt_signed(b),
        Les => a.le_signed(b),
        Gts => a.gt_signed(b),
        Ges => a.ge_signed(b),
    }
}

/// Applies a binary operator to four-state values. X-propagation rules
/// (known-dominant AND/OR, poisoning arithmetic, short-circuiting
/// equality) live in [`Bits4`]; this is the same dispatch table as
/// [`apply_binary`].
pub fn apply_binary4(op: BinaryOp, a: &Bits4, b: &Bits4) -> Bits4 {
    use BinaryOp::*;
    match op {
        Add => a.add(b),
        Sub => a.sub(b),
        Mul => a.mul(b),
        Div => a.div(b),
        Rem => a.rem(b),
        And => a.and(b),
        Or => a.or(b),
        Xor => a.xor(b),
        Shl => a.shl(b),
        Shr => a.shr(b),
        Ashr => a.ashr(b),
        Eq => a.eq_bits(b),
        Ne => a.ne_bits(b),
        Lt => a.lt_unsigned(b),
        Le => a.le_unsigned(b),
        Gt => a.gt_unsigned(b),
        Ge => a.ge_unsigned(b),
        Lts => a.lt_signed(b),
        Les => a.le_signed(b),
        Gts => a.gt_signed(b),
        Ges => a.ge_signed(b),
    }
}

/// Applies a unary operator to a four-state value.
pub fn apply_unary4(op: UnaryOp, v: &Bits4) -> Bits4 {
    match op {
        UnaryOp::Not => v.not(),
        UnaryOp::Neg => v.neg(),
        UnaryOp::ReduceAnd => v.reduce_and(),
        UnaryOp::ReduceOr => v.reduce_or(),
        UnaryOp::ReduceXor => v.reduce_xor(),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(b) => write!(f, "{}'h{:x}", b.width(), b),
            Expr::Ref(name) => write!(f, "{name}"),
            Expr::Unary(op, e) => {
                let tok = match op {
                    UnaryOp::Not => "~",
                    UnaryOp::Neg => "-",
                    UnaryOp::ReduceAnd => "&",
                    UnaryOp::ReduceOr => "|",
                    UnaryOp::ReduceXor => "^",
                };
                write!(f, "{tok}({e})")
            }
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.token()),
            Expr::Mux(s, t, e) => write!(f, "mux({s}, {t}, {e})"),
            Expr::Slice(e, hi, lo) => {
                if hi == lo {
                    write!(f, "{e}[{hi}]")
                } else {
                    write!(f, "{e}[{hi}:{lo}]")
                }
            }
            Expr::Cat(h, l) => write!(f, "{{{h}, {l}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, u64, u32)]) -> impl Fn(&str) -> Option<Bits> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, v, w)| Bits::from_u64(*v, *w))
        }
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(3, 8));
        let v = e.eval(&env(&[("a", 4, 8)])).unwrap();
        assert_eq!(v.to_u64(), 7);
    }

    #[test]
    fn eval_mux_and_slice() {
        let e = Expr::mux(
            Expr::var("sel"),
            Expr::Slice(Box::new(Expr::var("x")), 3, 0),
            Expr::lit(0, 4),
        );
        assert_eq!(
            e.eval(&env(&[("sel", 1, 1), ("x", 0xAB, 8)]))
                .unwrap()
                .to_u64(),
            0xB
        );
        assert_eq!(
            e.eval(&env(&[("sel", 0, 1), ("x", 0xAB, 8)]))
                .unwrap()
                .to_u64(),
            0
        );
    }

    #[test]
    fn eval_unknown_signal_errors() {
        let e = Expr::var("ghost");
        assert_eq!(
            e.eval(&env(&[])).unwrap_err(),
            ExprError::UnknownSignal("ghost".into())
        );
    }

    #[test]
    fn width_rules() {
        let wenv = |pairs: &'static [(&'static str, u32)]| {
            move |name: &str| pairs.iter().find(|(n, _)| *n == name).map(|(_, w)| *w)
        };
        let lk = wenv(&[("a", 8), ("b", 8), ("c", 4)]);
        let add = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("b"));
        assert_eq!(add.width(&lk).unwrap(), 8);
        let bad = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("c"));
        assert!(bad.width(&lk).is_err());
        let shift = Expr::binary(BinaryOp::Shl, Expr::var("a"), Expr::var("c"));
        assert_eq!(shift.width(&lk).unwrap(), 8);
        let cmp = Expr::binary(BinaryOp::Lt, Expr::var("a"), Expr::var("b"));
        assert_eq!(cmp.width(&lk).unwrap(), 1);
        let cat = Expr::Cat(Box::new(Expr::var("a")), Box::new(Expr::var("c")));
        assert_eq!(cat.width(&lk).unwrap(), 12);
        let red = Expr::unary(UnaryOp::ReduceOr, Expr::var("a"));
        assert_eq!(red.width(&lk).unwrap(), 1);
        let bad_slice = Expr::Slice(Box::new(Expr::var("c")), 9, 0);
        assert!(bad_slice.width(&lk).is_err());
        let bad_mux = Expr::mux(Expr::var("a"), Expr::var("b"), Expr::var("b"));
        assert!(bad_mux.width(&lk).is_err());
    }

    #[test]
    fn refs_deduplicate() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::var("x"),
            Expr::binary(BinaryOp::Mul, Expr::var("x"), Expr::var("y")),
        );
        let refs = e.refs();
        assert_eq!(refs.len(), 2);
        assert!(refs.contains("x") && refs.contains("y"));
    }

    #[test]
    fn rename_and_substitute() {
        let e = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("b"));
        let renamed = e.rename_refs(&|n| (n == "a").then(|| "top.a".to_owned()));
        assert_eq!(renamed.to_string(), "(top.a + b)");
        let substituted = e.substitute(&|n| (n == "b").then(|| Expr::lit(1, 8)));
        assert_eq!(substituted.to_string(), "(a + 8'h1)");
    }

    #[test]
    fn display_forms() {
        let e = Expr::mux(
            Expr::binary(BinaryOp::Eq, Expr::var("op"), Expr::lit(2, 2)),
            Expr::unary(UnaryOp::Not, Expr::var("x")),
            Expr::Slice(Box::new(Expr::var("y")), 5, 5),
        );
        assert_eq!(e.to_string(), "mux((op == 2'h2), ~(x), y[5])");
        let cat = Expr::Cat(Box::new(Expr::var("h")), Box::new(Expr::var("l")));
        assert_eq!(cat.to_string(), "{h, l}");
    }

    #[test]
    fn node_count() {
        let e = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(1, 4));
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn eval_reductions_and_shifts() {
        let lk = env(&[("x", 0b1011, 4), ("s", 2, 3)]);
        assert_eq!(
            Expr::unary(UnaryOp::ReduceXor, Expr::var("x"))
                .eval(&lk)
                .unwrap()
                .to_u64(),
            1
        );
        assert_eq!(
            Expr::binary(BinaryOp::Shl, Expr::var("x"), Expr::var("s"))
                .eval(&lk)
                .unwrap()
                .to_u64(),
            0b1100
        );
        assert_eq!(
            Expr::binary(BinaryOp::Ashr, Expr::var("x"), Expr::var("s"))
                .eval(&lk)
                .unwrap()
                .to_u64(),
            0b1110
        );
    }

    #[test]
    fn signed_compare_eval() {
        let lk = env(&[("a", 0xF, 4), ("b", 1, 4)]); // a = -1 signed
        assert!(Expr::binary(BinaryOp::Lts, Expr::var("a"), Expr::var("b"))
            .eval(&lk)
            .unwrap()
            .is_truthy());
        assert!(!Expr::binary(BinaryOp::Lt, Expr::var("a"), Expr::var("b"))
            .eval(&lk)
            .unwrap()
            .is_truthy());
    }
}
