//! Compiler passes over [`CircuitState`].
//!
//! The pipeline reproduces the FIRRTL flow the paper relies on (§4.1):
//!
//! 1. [`AnnotateDebugInfo`] — Algorithm 1, pass 1 (High form): computes
//!    each statement's enable condition and marks variables of interest
//!    (plus `DontTouch` in debug mode).
//! 2. [`ExpandWhens`] — lowers `when` trees to muxes, SSA-renaming
//!    multiply-assigned procedural targets (§3.1, Listings 1→2).
//! 3. [`ConstProp`], [`Cse`], [`Dce`] — the "default optimization
//!    passes" (constant propagation, common sub-expression elimination,
//!    dead code elimination) that make optimized RTL hard to debug.
//! 4. [`CollectSymbols`] — Algorithm 1, pass 2 (Low form): keeps only
//!    annotations whose signals survived optimization.

mod const_prop;
mod cse;
mod dce;
mod expand_whens;
mod symbols;

pub use const_prop::ConstProp;
pub use cse::Cse;
pub use dce::Dce;
pub use expand_whens::ExpandWhens;
pub use symbols::{AnnotateDebugInfo, CollectSymbols, DebugTable, DebugVariable, SymBreakpoint};

use std::fmt;

use crate::annot::CircuitState;
use crate::stmt::IrError;

/// Error from running a pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: &'static str,
    /// Underlying IR error.
    pub source: IrError,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass {} failed: {}", self.pass, self.source)
    }
}

impl std::error::Error for PassError {}

/// A transformation over circuit state.
pub trait Pass {
    /// Stable pass name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the pass, mutating the state in place.
    ///
    /// # Errors
    ///
    /// Returns [`PassError`] when the input violates the pass's
    /// preconditions or an internal invariant breaks.
    fn run(&self, state: &mut CircuitState) -> Result<(), PassError>;
}

/// Runs a sequence of passes, validating the circuit before and after.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// The standard optimizing pipeline used in "release" builds, with
    /// symbol extraction (Algorithm 1) wrapped around the optimizers.
    pub fn standard() -> PassManager {
        let mut pm = PassManager::new();
        pm.add(AnnotateDebugInfo::new());
        pm.add(ExpandWhens::new());
        pm.add(ConstProp::new());
        pm.add(Cse::new());
        pm.add(Dce::new());
        pm
    }

    /// The debug pipeline: same shape, but the annotation pass will be
    /// run with `debug_mode`, which DontTouch-protects annotated
    /// signals (the `-O0` analogue; the optimizers still run but are
    /// inhibited on protected signals).
    pub fn debug() -> PassManager {
        PassManager::standard()
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Validates the circuit after every pass (slower; for tests).
    pub fn verify_each(&mut self, on: bool) -> &mut PassManager {
        self.verify_each = on;
        self
    }

    /// Runs all passes in order.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure or validation error.
    pub fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        state.circuit.validate().map_err(|source| PassError {
            pass: "input-validate",
            source,
        })?;
        for pass in &self.passes {
            pass.run(state)?;
            if self.verify_each {
                state.circuit.validate().map_err(|source| PassError {
                    pass: pass.name(),
                    source,
                })?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

/// Convenience: runs the full standard pipeline (annotate → lower →
/// optimize) and returns the collected debug table.
///
/// When `debug_mode` is true, annotated signals are DontTouch-protected
/// so the optimizers preserve them (bigger symbol table, slower
/// simulation — the paper's debug build).
///
/// # Errors
///
/// Returns the first pass failure.
pub fn compile(state: &mut CircuitState, debug_mode: bool) -> Result<DebugTable, PassError> {
    state.annotations.set_debug_mode(debug_mode);
    let pm = PassManager::standard();
    pm.run(state)?;
    state.circuit.check_low().map_err(|source| PassError {
        pass: "low-form-check",
        source,
    })?;
    CollectSymbols::new().collect(state)
}

/// [`compile`] with a post-compile check hook: after the pipeline and
/// symbol collection succeed, `check` runs over the lowered state and
/// its debug table, and an `Err` from it fails the compile with
/// [`IrError::CheckFailed`]. The hook is how external analyses (the
/// `hgdb-lint` crate's deny-level gate, most notably) bolt onto the
/// pass manager without this crate depending on them.
///
/// # Errors
///
/// Returns the first pass failure, or a `PassError` wrapping
/// [`IrError::CheckFailed`] when the hook rejects the circuit.
pub fn compile_with_check<F>(
    state: &mut CircuitState,
    debug_mode: bool,
    check: F,
) -> Result<DebugTable, PassError>
where
    F: FnOnce(&CircuitState, &DebugTable) -> Result<(), String>,
{
    let table = compile(state, debug_mode)?;
    check(state, &table).map_err(|detail| PassError {
        pass: "post-compile-check",
        source: IrError::CheckFailed(detail),
    })?;
    Ok(table)
}
