//! When-expansion and SSA transform (§3.1 of the paper).
//!
//! Lowers High-form `when` trees into straight-line Low form:
//!
//! * Procedural targets (wires, output ports, instance inputs) that are
//!   assigned multiple times get SSA temporaries — `sum` becomes
//!   `sum_0`, `sum_1`, … exactly as in the paper's Listing 2 — with a
//!   mux against the previous version when the assignment is
//!   conditional.
//! * Register assignments accumulate a *next-value* chain; the final
//!   value becomes the register's single connect.
//! * Each distinct `when` condition is materialized as a `_cond_N` node
//!   so that breakpoint enable conditions reference real RTL signals
//!   that the debugger can query at runtime.
//! * Memory writes AND the surrounding condition stack into their
//!   enable.
//!
//! The pass also rewrites the [`DebugAnnotation`]s produced by
//! Algorithm 1's first pass: each annotated statement's enable becomes
//! the AND-reduction of the materialized condition stack, its variable
//! mapping points at the SSA temporary holding the assigned value, and
//! its scope records the version of every variable live *before* the
//! statement.

use std::collections::{HashMap, HashSet};

use crate::annot::CircuitState;
use crate::expr::Expr;
use crate::passes::{Pass, PassError};
use crate::source::SourceLoc;
use crate::stmt::{walk_stmts, IrError, SignalKind, Stmt, StmtId};

/// The when-expansion / SSA pass.
#[derive(Debug, Clone, Default)]
pub struct ExpandWhens {
    _private: (),
}

impl ExpandWhens {
    /// Creates the pass.
    pub fn new() -> ExpandWhens {
        ExpandWhens::default()
    }
}

impl Pass for ExpandWhens {
    fn name(&self) -> &'static str {
        "expand-whens"
    }

    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        let module_names: Vec<String> = state
            .circuit
            .modules
            .iter()
            .map(|m| m.name.clone())
            .collect();
        for name in module_names {
            expand_module(state, &name).map_err(|source| PassError {
                pass: "expand-whens",
                source,
            })?;
        }
        Ok(())
    }
}

/// Per-target classification for connect handling.
#[derive(Clone, Copy, PartialEq)]
enum TargetKind {
    /// Procedural: wires, output ports, instance inputs.
    Procedural,
    /// Register next-value.
    Register,
}

struct Expander {
    module_name: String,
    /// Signal name → kind (from the pre-expansion signal table).
    kinds: HashMap<String, SignalKind>,
    /// Procedural target → current SSA node name.
    env: HashMap<String, String>,
    /// Register → current next-value node name.
    reg_env: HashMap<String, String>,
    /// All names in use (for fresh-name generation).
    used: HashSet<String>,
    /// Per-base version counters.
    versions: HashMap<String, u32>,
    /// Declarations (wires, regs, mems, instances) hoisted to the top.
    decls: Vec<Stmt>,
    /// Nodes / mem ops in evaluation order.
    body: Vec<Stmt>,
    /// Condition stack: 1-bit exprs over materialized cond nodes.
    cond_stack: Vec<Expr>,
    /// Next fresh statement id.
    next_id: u32,
    /// Collected per-statement SSA facts for annotation rewriting:
    /// stmt id → (enable, assigned mapping, scope snapshot).
    ssa_facts: HashMap<StmtId, SsaFact>,
}

/// Annotation-facing data captured while expanding one statement.
struct SsaFact {
    enable: Option<Expr>,
    assigned: Option<(String, String)>,
    scope: Vec<(String, String)>,
}

fn expand_module(state: &mut CircuitState, name: &str) -> Result<(), IrError> {
    let module = state.circuit.module(name).expect("module listed").clone();
    let kinds: HashMap<String, SignalKind> = module
        .signal_table(&state.circuit)
        .into_iter()
        .map(|(k, (_, kind))| (k, kind))
        .collect();

    // Instance-input connect targets are also "procedural" but their
    // kind from the signal table is InstancePort regardless of
    // direction; classify via the connectable direction below.
    let max_id = walk_stmts(&module.stmts)
        .map(|s| s.id().0)
        .max()
        .unwrap_or(0);

    let mut used: HashSet<String> = kinds.keys().cloned().collect();
    for p in &module.ports {
        used.insert(p.name.clone());
    }

    let mut ex = Expander {
        module_name: module.name.clone(),
        kinds,
        env: HashMap::new(),
        reg_env: HashMap::new(),
        used,
        versions: HashMap::new(),
        decls: Vec::new(),
        body: Vec::new(),
        cond_stack: Vec::new(),
        next_id: max_id + 1,
        ssa_facts: HashMap::new(),
    };

    ex.expand_stmts(&module.stmts)?;

    // Final connects: procedural targets then register next values.
    let mut final_stmts = Vec::new();
    final_stmts.append(&mut ex.decls);
    final_stmts.append(&mut ex.body);
    let mut finals: Vec<(String, String)> =
        ex.env.iter().map(|(t, n)| (t.clone(), n.clone())).collect();
    finals.sort();
    for (target, node) in finals {
        // Self-connect (wire aliasing its own last node) is the single
        // Low-form driver.
        let id = StmtId(ex.next_id);
        ex.next_id += 1;
        final_stmts.push(Stmt::Connect {
            id,
            target,
            expr: Expr::Ref(node),
            loc: SourceLoc::unknown(),
        });
    }
    let mut reg_finals: Vec<(String, String)> = ex
        .reg_env
        .iter()
        .map(|(t, n)| (t.clone(), n.clone()))
        .collect();
    reg_finals.sort();
    for (reg, node) in reg_finals {
        let id = StmtId(ex.next_id);
        ex.next_id += 1;
        final_stmts.push(Stmt::Connect {
            id,
            target: reg,
            expr: Expr::Ref(node),
            loc: SourceLoc::unknown(),
        });
    }

    let facts = ex.ssa_facts;
    let module_mut = state.circuit.module_mut(name).expect("module listed");
    module_mut.stmts = final_stmts;

    // Propagate DontTouch from the original procedural targets to the
    // SSA temporaries that now hold their values (pass 1 marked the
    // base names; the temporaries are what optimization would touch).
    // Dotted targets (instance ports) are not module-local signals, so
    // pass 1 could not mark them — in debug mode their temporaries must
    // be protected here or a constant driven onto an instance input
    // loses its breakpoint to ConstProp + DCE.
    let mut new_marks = Vec::new();
    for fact in facts.values() {
        if let Some((src, temp)) = &fact.assigned {
            if state.annotations.is_dont_touch(name, src)
                || (state.annotations.debug_mode() && src.contains('.'))
            {
                new_marks.push(temp.clone());
            }
        }
    }
    // In debug mode, condition nodes must survive so that every
    // breakpoint enable stays evaluatable.
    if state.annotations.debug_mode() {
        for stmt in &state.circuit.module(name).expect("module listed").stmts {
            if let Stmt::Node { name: n, .. } = stmt {
                if n.starts_with("_cond_") {
                    new_marks.push(n.clone());
                }
            }
        }
    }
    for mark in new_marks {
        state.annotations.add_dont_touch(name, mark);
    }

    // Rewrite annotations with the captured SSA facts.
    for ann in state
        .annotations
        .debug_mut()
        .iter_mut()
        .filter(|a| a.module == name)
    {
        if let Some(fact) = facts.get(&ann.stmt) {
            ann.enable = fact.enable.clone();
            ann.assigned = fact.assigned.clone();
            ann.scope = fact.scope.clone();
        }
    }
    Ok(())
}

impl Expander {
    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn fresh_name(&mut self, base: &str) -> String {
        let base = base.replace('.', "_");
        loop {
            let k = self.versions.entry(base.clone()).or_insert(0);
            let candidate = format!("{base}_{k}");
            *k += 1;
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// Rewrites reads of procedural targets to their current SSA name.
    fn rewrite(&self, expr: &Expr) -> Result<Expr, IrError> {
        let mut missing: Option<String> = None;
        let rewritten = expr.rename_refs(&|name| match self.kinds.get(name) {
            Some(SignalKind::Wire) | Some(SignalKind::Output) => self.env.get(name).cloned(),
            Some(SignalKind::InstancePort) => self.env.get(name).cloned(),
            _ => None,
        });
        // Detect use-before-def for wires/outputs (instance ports are
        // nets from the child side, so reading an unconnected instance
        // *output* is fine; instance inputs read before connect are
        // use-before-def but indistinguishable here without direction
        // info — the frontend prevents them).
        for name in expr.refs() {
            match self.kinds.get(name.as_str()) {
                Some(SignalKind::Wire) | Some(SignalKind::Output)
                    if !self.env.contains_key(&name) =>
                {
                    missing = Some(name);
                    break;
                }
                _ => {}
            }
        }
        if let Some(signal) = missing {
            return Err(IrError::UninitializedRead {
                module: self.module_name.clone(),
                signal,
            });
        }
        Ok(rewritten)
    }

    /// AND-reduction of the current condition stack (§3.1): `None` when
    /// unconditional.
    fn stack_enable(&self) -> Option<Expr> {
        let mut it = self.cond_stack.iter().cloned();
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.logical_and(c)))
    }

    /// Scope snapshot: every procedural variable's current SSA name
    /// plus registers mapping to themselves.
    fn scope_snapshot(&self) -> Vec<(String, String)> {
        let mut scope: Vec<(String, String)> = self
            .env
            .iter()
            .map(|(src, cur)| (src.clone(), cur.clone()))
            .collect();
        for (name, kind) in &self.kinds {
            if *kind == SignalKind::Reg {
                scope.push((name.clone(), name.clone()));
            }
        }
        scope.sort();
        scope
    }

    fn target_kind(&self, target: &str) -> TargetKind {
        match self.kinds.get(target) {
            Some(SignalKind::Reg) => TargetKind::Register,
            _ => TargetKind::Procedural,
        }
    }

    fn expand_stmts(&mut self, stmts: &[Stmt]) -> Result<(), IrError> {
        for stmt in stmts {
            self.expand_stmt(stmt)?;
        }
        Ok(())
    }

    fn expand_stmt(&mut self, stmt: &Stmt) -> Result<(), IrError> {
        match stmt {
            Stmt::Wire { .. } | Stmt::Reg { .. } | Stmt::Mem { .. } | Stmt::Instance { .. } => {
                self.decls.push(stmt.clone());
            }
            Stmt::Node {
                id,
                name,
                expr,
                loc,
            } => {
                let fact_scope = self.scope_snapshot();
                let expr = self.rewrite(expr)?;
                self.body.push(Stmt::Node {
                    id: *id,
                    name: name.clone(),
                    expr,
                    loc: loc.clone(),
                });
                self.ssa_facts.insert(
                    *id,
                    SsaFact {
                        enable: self.stack_enable(),
                        assigned: Some((name.clone(), name.clone())),
                        scope: fact_scope,
                    },
                );
            }
            Stmt::Connect {
                id,
                target,
                expr,
                loc,
            } => {
                let fact_scope = self.scope_snapshot();
                let rhs = self.rewrite(expr)?;
                let enable = self.stack_enable();
                match self.target_kind(target) {
                    TargetKind::Procedural => {
                        let current = self.env.get(target).cloned();
                        let value = match (&enable, current.clone()) {
                            (None, _) => rhs,
                            (Some(en), Some(cur)) => Expr::mux(en.clone(), rhs, Expr::Ref(cur)),
                            (Some(_), None) => {
                                return Err(IrError::ConditionalWithoutDefault {
                                    module: self.module_name.clone(),
                                    target: target.clone(),
                                })
                            }
                        };
                        let new_name = self.fresh_name(target);
                        let nid = self.fresh_id();
                        self.body.push(Stmt::Node {
                            id: nid,
                            name: new_name.clone(),
                            expr: value,
                            loc: loc.clone(),
                        });
                        self.env.insert(target.clone(), new_name.clone());
                        self.ssa_facts.insert(
                            *id,
                            SsaFact {
                                enable,
                                assigned: Some((target.clone(), new_name)),
                                scope: fact_scope,
                            },
                        );
                    }
                    TargetKind::Register => {
                        let current = self
                            .reg_env
                            .get(target)
                            .cloned()
                            .unwrap_or_else(|| target.clone());
                        let value = match &enable {
                            None => rhs,
                            Some(en) => Expr::mux(en.clone(), rhs, Expr::Ref(current)),
                        };
                        let new_name = self.fresh_name(target);
                        let nid = self.fresh_id();
                        self.body.push(Stmt::Node {
                            id: nid,
                            name: new_name.clone(),
                            expr: value,
                            loc: loc.clone(),
                        });
                        self.reg_env.insert(target.clone(), new_name.clone());
                        self.ssa_facts.insert(
                            *id,
                            SsaFact {
                                enable,
                                assigned: Some((target.clone(), new_name)),
                                scope: fact_scope,
                            },
                        );
                    }
                }
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
                loc,
                ..
            } => {
                let cond = self.rewrite(cond)?;
                // Materialize the condition as a real RTL signal so
                // enable conditions reference queryable state.
                let cond_name = self.fresh_name("_cond");
                let nid = self.fresh_id();
                self.body.push(Stmt::Node {
                    id: nid,
                    name: cond_name.clone(),
                    expr: cond,
                    loc: loc.clone(),
                });
                self.cond_stack.push(Expr::Ref(cond_name.clone()));
                self.expand_stmts(then_body)?;
                self.cond_stack.pop();
                if !else_body.is_empty() {
                    self.cond_stack.push(Expr::Ref(cond_name).logical_not());
                    self.expand_stmts(else_body)?;
                    self.cond_stack.pop();
                }
            }
            Stmt::MemRead {
                id,
                mem,
                name,
                addr,
                loc,
            } => {
                let addr = self.rewrite(addr)?;
                self.body.push(Stmt::MemRead {
                    id: *id,
                    mem: mem.clone(),
                    name: name.clone(),
                    addr,
                    loc: loc.clone(),
                });
            }
            Stmt::MemWrite {
                id,
                mem,
                addr,
                data,
                en,
                loc,
            } => {
                let fact_scope = self.scope_snapshot();
                let addr = self.rewrite(addr)?;
                let data = self.rewrite(data)?;
                let mut en = self.rewrite(en)?;
                let enable = self.stack_enable();
                if let Some(stack) = &enable {
                    en = stack.clone().logical_and(en);
                }
                self.body.push(Stmt::MemWrite {
                    id: *id,
                    mem: mem.clone(),
                    addr,
                    data,
                    en,
                    loc: loc.clone(),
                });
                self.ssa_facts.insert(
                    *id,
                    SsaFact {
                        enable,
                        assigned: None,
                        scope: fact_scope,
                    },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::{CircuitState, DebugAnnotation};
    use crate::expr::BinaryOp;
    use crate::stmt::{Circuit, Module, Port, PortDir};
    use bits::Bits;

    fn loc(line: u32) -> SourceLoc {
        SourceLoc::new("listing1.rs", line, 1)
    }

    /// Builds the paper's Listing 1: a 2-iteration accumulate loop,
    /// already unrolled by the generator (as an HGF would).
    ///
    /// ```text
    /// int sum = 0;
    /// for (int i = 0; i < 2; i++) {     // unrolled
    ///   if (data[i] % 2)
    ///     sum += data[i];
    /// }
    /// ```
    fn listing1() -> CircuitState {
        let mut m = Module::new("acc", loc(1));
        m.ports = vec![
            Port {
                name: "data0".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(1),
            },
            Port {
                name: "data1".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(1),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(1),
            },
        ];
        let odd = |d: &str| {
            Expr::binary(
                BinaryOp::Eq,
                Expr::binary(BinaryOp::Rem, Expr::var(d), Expr::lit(2, 8)),
                Expr::lit(1, 8),
            )
        };
        let mut id = 0u32;
        let mut next = || {
            id += 1;
            StmtId(id)
        };
        m.stmts = vec![
            Stmt::Wire {
                id: next(),
                name: "sum".into(),
                width: 8,
                loc: loc(1),
            },
            // sum = 0
            Stmt::Connect {
                id: next(),
                target: "sum".into(),
                expr: Expr::lit(0, 8),
                loc: loc(1),
            },
            // iteration 0
            Stmt::When {
                id: next(),
                cond: odd("data0"),
                then_body: vec![Stmt::Connect {
                    id: StmtId(100),
                    target: "sum".into(),
                    expr: Expr::binary(BinaryOp::Add, Expr::var("sum"), Expr::var("data0")),
                    loc: loc(4),
                }],
                else_body: vec![],
                loc: loc(3),
            },
            // iteration 1
            Stmt::When {
                id: next(),
                cond: odd("data1"),
                then_body: vec![Stmt::Connect {
                    id: StmtId(101),
                    target: "sum".into(),
                    expr: Expr::binary(BinaryOp::Add, Expr::var("sum"), Expr::var("data1")),
                    loc: loc(4),
                }],
                else_body: vec![],
                loc: loc(3),
            },
            Stmt::Connect {
                id: next(),
                target: "out".into(),
                expr: Expr::var("sum"),
                loc: loc(6),
            },
        ];
        CircuitState::new(Circuit::new("acc", vec![m]))
    }

    fn eval_module(state: &CircuitState, inputs: &[(&str, u64, u32)]) -> HashMap<String, Bits> {
        // Tiny straight-line evaluator for Low-form tests.
        let m = state.circuit.top_module();
        let mut values: HashMap<String, Bits> = inputs
            .iter()
            .map(|(n, v, w)| (n.to_string(), Bits::from_u64(*v, *w)))
            .collect();
        for stmt in &m.stmts {
            match stmt {
                Stmt::Node { name, expr, .. } => {
                    let v = expr
                        .eval(&|n| values.get(n).cloned())
                        .unwrap_or_else(|e| panic!("eval {name}: {e}"));
                    values.insert(name.clone(), v);
                }
                Stmt::Connect { target, expr, .. } => {
                    let v = expr.eval(&|n| values.get(n).cloned()).unwrap();
                    values.insert(target.clone(), v);
                }
                _ => {}
            }
        }
        values
    }

    #[test]
    fn listing1_to_listing2_semantics() {
        let mut state = listing1();
        // Attach annotations for the two unrolled `sum += data[i]`
        // statements (both at source line 4 — "multiple line-mapping
        // after SSA", exactly as the paper describes).
        for id in [100, 101] {
            state.annotations.add_debug(DebugAnnotation {
                module: "acc".into(),
                stmt: StmtId(id),
                loc: loc(4),
                enable: None,
                assigned: None,
                scope: vec![],
            });
        }
        ExpandWhens::new().run(&mut state).unwrap();
        state.circuit.validate().unwrap();
        state.circuit.check_low().unwrap();

        // Semantics: 3 % 2 = 1 (odd), 4 % 2 = 0 (even) -> sum = 3.
        let vals = eval_module(&state, &[("data0", 3, 8), ("data1", 4, 8)]);
        assert_eq!(vals["out"].to_u64(), 3);
        // Both odd: 3 + 5 = 8.
        let vals = eval_module(&state, &[("data0", 3, 8), ("data1", 5, 8)]);
        assert_eq!(vals["out"].to_u64(), 8);

        // SSA temporaries exist: sum_0 (init), sum_1, sum_2.
        for ssa in ["sum_0", "sum_1", "sum_2"] {
            assert!(
                state
                    .circuit
                    .top_module()
                    .stmts
                    .iter()
                    .any(|s| s.declared_signal() == Some(ssa)),
                "missing SSA temp {ssa}"
            );
        }

        // Intermediate partial sums are preserved (the whole point of
        // the SSA transform): with data0=3 (odd), sum_1 = 3 even if a
        // later iteration overwrites sum.
        let vals = eval_module(&state, &[("data0", 3, 8), ("data1", 5, 8)]);
        assert_eq!(vals["sum_0"].to_u64(), 0);
        assert_eq!(vals["sum_1"].to_u64(), 3);
        assert_eq!(vals["sum_2"].to_u64(), 8);
    }

    #[test]
    fn annotations_rewritten_with_enable_and_scope() {
        let mut state = listing1();
        for id in [100, 101] {
            state.annotations.add_debug(DebugAnnotation {
                module: "acc".into(),
                stmt: StmtId(id),
                loc: loc(4),
                enable: None,
                assigned: None,
                scope: vec![],
            });
        }
        ExpandWhens::new().run(&mut state).unwrap();

        let anns = state.annotations.debug();
        let a0 = anns.iter().find(|a| a.stmt == StmtId(100)).unwrap();
        let a1 = anns.iter().find(|a| a.stmt == StmtId(101)).unwrap();

        // Enables reference materialized condition nodes.
        assert_eq!(a0.enable.as_ref().unwrap().to_string(), "_cond_0");
        assert_eq!(a1.enable.as_ref().unwrap().to_string(), "_cond_1");

        // Scope before the first += maps sum -> sum_0; before the
        // second, sum -> sum_1 (paper: fetch sum0 at line 4, sum1 at
        // line 6).
        assert!(a0.scope.contains(&("sum".into(), "sum_0".into())));
        assert!(a1.scope.contains(&("sum".into(), "sum_1".into())));

        // Assigned values land in sum_1 / sum_2.
        assert_eq!(a0.assigned, Some(("sum".into(), "sum_1".into())));
        assert_eq!(a1.assigned, Some(("sum".into(), "sum_2".into())));
    }

    #[test]
    fn conditional_without_default_rejected() {
        let mut m = Module::new("bad", loc(1));
        m.ports = vec![Port {
            name: "c".into(),
            dir: PortDir::Input,
            width: 1,
            loc: loc(1),
        }];
        m.stmts = vec![
            Stmt::Wire {
                id: StmtId(1),
                name: "w".into(),
                width: 1,
                loc: loc(1),
            },
            Stmt::When {
                id: StmtId(2),
                cond: Expr::var("c"),
                then_body: vec![Stmt::Connect {
                    id: StmtId(3),
                    target: "w".into(),
                    expr: Expr::lit(1, 1),
                    loc: loc(2),
                }],
                else_body: vec![],
                loc: loc(2),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("bad", vec![m]));
        let err = ExpandWhens::new().run(&mut state).unwrap_err();
        assert!(matches!(
            err.source,
            IrError::ConditionalWithoutDefault { .. }
        ));
    }

    #[test]
    fn read_before_write_rejected() {
        let mut m = Module::new("bad", loc(1));
        m.ports = vec![Port {
            name: "o".into(),
            dir: PortDir::Output,
            width: 1,
            loc: loc(1),
        }];
        m.stmts = vec![
            Stmt::Wire {
                id: StmtId(1),
                name: "w".into(),
                width: 1,
                loc: loc(1),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "o".into(),
                expr: Expr::var("w"),
                loc: loc(2),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "w".into(),
                expr: Expr::lit(0, 1),
                loc: loc(3),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("bad", vec![m]));
        let err = ExpandWhens::new().run(&mut state).unwrap_err();
        assert!(matches!(err.source, IrError::UninitializedRead { .. }));
    }

    #[test]
    fn register_assignments_chain_next_values() {
        let mut m = Module::new("counter", loc(1));
        m.ports = vec![Port {
            name: "en".into(),
            dir: PortDir::Input,
            width: 1,
            loc: loc(1),
        }];
        m.stmts = vec![
            Stmt::Reg {
                id: StmtId(1),
                name: "count".into(),
                width: 8,
                init: Some(Bits::zero(8)),
                loc: loc(1),
            },
            Stmt::When {
                id: StmtId(2),
                cond: Expr::var("en"),
                then_body: vec![Stmt::Connect {
                    id: StmtId(3),
                    target: "count".into(),
                    expr: Expr::binary(BinaryOp::Add, Expr::var("count"), Expr::lit(1, 8)),
                    loc: loc(2),
                }],
                else_body: vec![],
                loc: loc(2),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("counter", vec![m]));
        ExpandWhens::new().run(&mut state).unwrap();
        state.circuit.check_low().unwrap();
        let m = state.circuit.top_module();
        // Exactly one connect to the register, referencing the muxed
        // next-value node.
        let connects: Vec<&Stmt> = m
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Connect { target, .. } if target == "count"))
            .collect();
        assert_eq!(connects.len(), 1);
        // The next-value mux falls back to the register itself
        // (hold) when the condition is false.
        let Stmt::Connect { expr, .. } = connects[0] else {
            unreachable!()
        };
        let Expr::Ref(node) = expr else {
            panic!("expected ref")
        };
        let next_expr = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Node { name, expr, .. } if name == node => Some(expr),
                _ => None,
            })
            .unwrap();
        assert!(next_expr.to_string().contains("mux"));
        assert!(next_expr.refs().contains("count"));
    }

    #[test]
    fn else_branch_reads_pre_when_value() {
        // w = 1; if c { w = 2 } else { o = w }  -- the else read must
        // see 1 (procedural semantics), which the mux encoding yields
        // because the then-assignment is guarded by c.
        let mut m = Module::new("m", loc(1));
        m.ports = vec![
            Port {
                name: "c".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(1),
            },
            Port {
                name: "o".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(1),
            },
        ];
        m.stmts = vec![
            Stmt::Wire {
                id: StmtId(1),
                name: "w".into(),
                width: 8,
                loc: loc(1),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "w".into(),
                expr: Expr::lit(1, 8),
                loc: loc(1),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "o".into(),
                expr: Expr::lit(0, 8),
                loc: loc(1),
            },
            Stmt::When {
                id: StmtId(4),
                cond: Expr::var("c"),
                then_body: vec![Stmt::Connect {
                    id: StmtId(5),
                    target: "w".into(),
                    expr: Expr::lit(2, 8),
                    loc: loc(2),
                }],
                else_body: vec![Stmt::Connect {
                    id: StmtId(6),
                    target: "o".into(),
                    expr: Expr::var("w"),
                    loc: loc(3),
                }],
                loc: loc(2),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        ExpandWhens::new().run(&mut state).unwrap();
        let vals = eval_module(&state, &[("c", 0, 1)]);
        assert_eq!(vals["o"].to_u64(), 1);
        let vals = eval_module(&state, &[("c", 1, 1)]);
        assert_eq!(vals["o"].to_u64(), 0);
    }

    #[test]
    fn memwrite_enable_absorbs_condition_stack() {
        let mut m = Module::new("m", loc(1));
        m.ports = vec![
            Port {
                name: "c".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(1),
            },
            Port {
                name: "we".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(1),
            },
        ];
        m.stmts = vec![
            Stmt::Mem {
                id: StmtId(1),
                name: "ram".into(),
                width: 8,
                depth: 16,
                loc: loc(1),
            },
            Stmt::When {
                id: StmtId(2),
                cond: Expr::var("c"),
                then_body: vec![Stmt::MemWrite {
                    id: StmtId(3),
                    mem: "ram".into(),
                    addr: Expr::lit(0, 4),
                    data: Expr::lit(7, 8),
                    en: Expr::var("we"),
                    loc: loc(2),
                }],
                else_body: vec![],
                loc: loc(2),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        ExpandWhens::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        let Some(Stmt::MemWrite { en, .. }) =
            m.stmts.iter().find(|s| matches!(s, Stmt::MemWrite { .. }))
        else {
            panic!("memwrite missing")
        };
        // en = _cond_0 & we
        assert_eq!(en.to_string(), "(_cond_0 & we)");
    }
}
