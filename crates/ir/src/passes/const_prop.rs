//! Constant propagation (one of FIRRTL's default optimizations, §4.1).
//!
//! Folds constant subexpressions, propagates constant-valued nodes into
//! their uses, and simplifies constant-selector muxes. `DontTouch`
//! signals are never substituted away (their defining nodes stay), which
//! is how debug mode keeps the symbol table intact at the cost of less
//! optimization.
//!
//! Runs on Low form (after when-expansion).

use std::collections::HashMap;

use bits::Bits;

use crate::annot::CircuitState;
use crate::expr::{apply_binary, Expr, UnaryOp};
use crate::passes::{Pass, PassError};
use crate::stmt::Stmt;

/// The constant-propagation pass.
#[derive(Debug, Clone, Default)]
pub struct ConstProp {
    _private: (),
}

impl ConstProp {
    /// Creates the pass.
    pub fn new() -> ConstProp {
        ConstProp::default()
    }
}

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "const-prop"
    }

    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        for module_idx in 0..state.circuit.modules.len() {
            let module_name = state.circuit.modules[module_idx].name.clone();
            // Iterate to a fixpoint (bounded): folding can expose new
            // constants.
            for _ in 0..8 {
                let mut consts: HashMap<String, Bits> = HashMap::new();
                {
                    let module = &state.circuit.modules[module_idx];
                    for stmt in &module.stmts {
                        if let Stmt::Node { name, expr, .. } = stmt {
                            if state.annotations.is_dont_touch(&module_name, name) {
                                continue;
                            }
                            if let Expr::Lit(b) = expr {
                                consts.insert(name.clone(), b.clone());
                            }
                        }
                    }
                }
                let module = &mut state.circuit.modules[module_idx];
                let mut changed = false;
                for stmt in &mut module.stmts {
                    let expr = match stmt {
                        Stmt::Node { expr, .. } | Stmt::Connect { expr, .. } => expr,
                        Stmt::MemRead { addr, .. } => addr,
                        Stmt::MemWrite { en, .. } => {
                            // Fold enable, address and data separately;
                            // handle en here and fall through for the
                            // others via a second pass below.
                            en
                        }
                        _ => continue,
                    };
                    let folded = fold(&substitute_consts(expr, &consts));
                    if folded != *expr {
                        *expr = folded;
                        changed = true;
                    }
                    // MemWrite has two more expressions.
                    if let Stmt::MemWrite { addr, data, .. } = stmt {
                        for e in [addr, data] {
                            let folded = fold(&substitute_consts(e, &consts));
                            if folded != *e {
                                *e = folded;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        Ok(())
    }
}

fn substitute_consts(expr: &Expr, consts: &HashMap<String, Bits>) -> Expr {
    expr.substitute(&|name| consts.get(name).map(|b| Expr::Lit(b.clone())))
}

/// Bottom-up constant folding with a few identity simplifications.
pub fn fold(expr: &Expr) -> Expr {
    match expr {
        Expr::Lit(_) | Expr::Ref(_) => expr.clone(),
        Expr::Unary(op, e) => {
            let e = fold(e);
            if let Expr::Lit(b) = &e {
                let v = match op {
                    UnaryOp::Not => b.not(),
                    UnaryOp::Neg => b.neg(),
                    UnaryOp::ReduceAnd => b.reduce_and(),
                    UnaryOp::ReduceOr => b.reduce_or(),
                    UnaryOp::ReduceXor => b.reduce_xor(),
                };
                return Expr::Lit(v);
            }
            // ~~x == x
            if *op == UnaryOp::Not {
                if let Expr::Unary(UnaryOp::Not, inner) = &e {
                    return (**inner).clone();
                }
            }
            Expr::Unary(*op, Box::new(e))
        }
        Expr::Binary(op, l, r) => {
            let l = fold(l);
            let r = fold(r);
            if let (Expr::Lit(a), Expr::Lit(b)) = (&l, &r) {
                // Shifts allow differing widths; other ops require
                // equal widths which validation guarantees.
                return Expr::Lit(apply_binary(*op, a, b));
            }
            // Identity simplifications that preserve widths.
            use crate::expr::BinaryOp::*;
            match (*op, &l, &r) {
                (And, Expr::Lit(b), _) | (And, _, Expr::Lit(b)) if b.is_zero() => {
                    return Expr::Lit(Bits::zero(b.width()));
                }
                (And, Expr::Lit(b), x) | (And, x, Expr::Lit(b)) if b.count_ones() == b.width() => {
                    return x.clone();
                }
                (Or, Expr::Lit(b), x) | (Or, x, Expr::Lit(b)) if b.is_zero() => {
                    return x.clone();
                }
                (Add, x, Expr::Lit(b)) | (Add, Expr::Lit(b), x) if b.is_zero() => {
                    return x.clone();
                }
                (Xor, x, Expr::Lit(b)) | (Xor, Expr::Lit(b), x) if b.is_zero() => {
                    return x.clone();
                }
                _ => {}
            }
            Expr::Binary(*op, Box::new(l), Box::new(r))
        }
        Expr::Mux(s, t, e) => {
            let s = fold(s);
            let t = fold(t);
            let e = fold(e);
            if let Expr::Lit(b) = &s {
                return if b.is_truthy() { t } else { e };
            }
            if t == e {
                return t;
            }
            Expr::Mux(Box::new(s), Box::new(t), Box::new(e))
        }
        Expr::Slice(e, hi, lo) => {
            let e = fold(e);
            if let Expr::Lit(b) = &e {
                return Expr::Lit(b.slice(*hi, *lo));
            }
            // Full-width slice is the identity... but only when we can
            // prove the width; leave it to the caller.
            Expr::Slice(Box::new(e), *hi, *lo)
        }
        Expr::Cat(h, l) => {
            let h = fold(h);
            let l = fold(l);
            if let (Expr::Lit(a), Expr::Lit(b)) = (&h, &l) {
                return Expr::Lit(a.concat(b));
            }
            Expr::Cat(Box::new(h), Box::new(l))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::CircuitState;
    use crate::expr::BinaryOp;
    use crate::source::SourceLoc;
    use crate::stmt::{Circuit, Module, Port, PortDir, StmtId};

    fn loc() -> SourceLoc {
        SourceLoc::new("t.rs", 1, 1)
    }

    fn module_with(stmts: Vec<Stmt>) -> CircuitState {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "x".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        m.stmts = stmts;
        CircuitState::new(Circuit::new("m", vec![m]))
    }

    #[test]
    fn folds_constant_tree() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::lit(3, 8),
            Expr::binary(BinaryOp::Mul, Expr::lit(2, 8), Expr::lit(5, 8)),
        );
        assert_eq!(fold(&e), Expr::lit(13, 8));
    }

    #[test]
    fn folds_mux_and_identities() {
        let m = Expr::mux(Expr::lit(1, 1), Expr::var("a"), Expr::var("b"));
        assert_eq!(fold(&m), Expr::var("a"));
        let same = Expr::mux(Expr::var("c"), Expr::var("a"), Expr::var("a"));
        assert_eq!(fold(&same), Expr::var("a"));
        let add0 = Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(0, 8));
        assert_eq!(fold(&add0), Expr::var("a"));
        let and0 = Expr::binary(BinaryOp::And, Expr::var("a"), Expr::lit(0, 8));
        assert_eq!(fold(&and0), Expr::lit(0, 8));
        let and_ones = Expr::binary(BinaryOp::And, Expr::var("a"), Expr::Lit(Bits::ones(8)));
        assert_eq!(fold(&and_ones), Expr::var("a"));
        let notnot = Expr::var("a").logical_not().logical_not();
        assert_eq!(fold(&notnot), Expr::var("a"));
    }

    #[test]
    fn propagates_through_nodes() {
        let mut state = module_with(vec![
            Stmt::Node {
                id: StmtId(1),
                name: "k".into(),
                expr: Expr::lit(4, 8),
                loc: loc(),
            },
            Stmt::Node {
                id: StmtId(2),
                name: "y".into(),
                expr: Expr::binary(BinaryOp::Add, Expr::var("k"), Expr::lit(1, 8)),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "out".into(),
                expr: Expr::var("y"),
                loc: loc(),
            },
        ]);
        ConstProp::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        let y = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Node { name, expr, .. } if name == "y" => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(y, Expr::lit(5, 8));
        // And out is then folded to the constant too (second fixpoint
        // iteration).
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { target, expr, .. } if target == "out" => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(out, Expr::lit(5, 8));
    }

    #[test]
    fn dont_touch_blocks_substitution() {
        let mut state = module_with(vec![
            Stmt::Node {
                id: StmtId(1),
                name: "k".into(),
                expr: Expr::lit(4, 8),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "out".into(),
                expr: Expr::var("k"),
                loc: loc(),
            },
        ]);
        state.annotations.add_dont_touch("m", "k");
        ConstProp::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { target, expr, .. } if target == "out" => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        // Still references k, not folded to 4.
        assert_eq!(out, Expr::var("k"));
    }

    #[test]
    fn non_constant_left_alone() {
        let mut state = module_with(vec![Stmt::Connect {
            id: StmtId(1),
            target: "out".into(),
            expr: Expr::binary(BinaryOp::Add, Expr::var("x"), Expr::lit(1, 8)),
            loc: loc(),
        }]);
        ConstProp::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(out.to_string(), "(x + 8'h1)");
    }
}
