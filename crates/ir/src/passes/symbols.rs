//! Symbol-table extraction — Algorithm 1 of the paper.
//!
//! Two passes around the optimization pipeline:
//!
//! * [`AnnotateDebugInfo`] (pass 1) runs on the **High form**, where the
//!   IR best resembles the generator source: it walks the `when` tree,
//!   computes every statement's enable condition from the condition
//!   stack, and records a [`DebugAnnotation`] per statement of
//!   interest. In debug mode it additionally marks the involved signals
//!   `DontTouch`, keeping them away from optimization (the paper
//!   reports ~30% larger symbol tables in this mode).
//! * [`CollectSymbols`] (pass 2) runs on the **Low form**, after
//!   optimization: annotations whose signals were optimized away are
//!   dropped — "a behavior consistent with software compilers" — and
//!   the survivors become the [`DebugTable`] from which the `symtab`
//!   crate builds the relational symbol table.

use crate::annot::{CircuitState, DebugAnnotation};
use crate::expr::Expr;
use crate::passes::{Pass, PassError};
use crate::source::SourceLoc;
use crate::stmt::{Module, Stmt, StmtId};

/// Algorithm 1, pass 1: annotate High-form statements.
#[derive(Debug, Clone, Default)]
pub struct AnnotateDebugInfo {
    _private: (),
}

impl AnnotateDebugInfo {
    /// Creates the pass.
    pub fn new() -> AnnotateDebugInfo {
        AnnotateDebugInfo::default()
    }
}

impl Pass for AnnotateDebugInfo {
    fn name(&self) -> &'static str {
        "annotate-debug-info"
    }

    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        let debug_mode = state.annotations.debug_mode();
        for module in &state.circuit.modules {
            let mut anns = Vec::new();
            let mut dont_touch = Vec::new();
            annotate_stmts(
                module,
                &module.stmts,
                &mut Vec::new(),
                &mut anns,
                &mut dont_touch,
            );
            for a in anns {
                state.annotations.add_debug(a);
            }
            if debug_mode {
                for sig in dont_touch {
                    state.annotations.add_dont_touch(&module.name, sig);
                }
                for (_, rtl) in &module.gen_vars {
                    if !rtl.contains('.') {
                        state.annotations.add_dont_touch(&module.name, rtl.clone());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Recursively annotates statements, maintaining the High-form
/// condition stack (`ComputeEnableCondition` in Algorithm 1 is the
/// AND-reduction of this stack).
fn annotate_stmts(
    module: &Module,
    stmts: &[Stmt],
    cond_stack: &mut Vec<Expr>,
    out: &mut Vec<DebugAnnotation>,
    dont_touch: &mut Vec<String>,
) {
    let enable = |stack: &[Expr]| -> Option<Expr> {
        let mut it = stack.iter().cloned();
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.logical_and(c)))
    };
    for stmt in stmts {
        match stmt {
            Stmt::Connect {
                id, target, loc, ..
            } if !loc.is_unknown() => {
                out.push(DebugAnnotation {
                    module: module.name.clone(),
                    stmt: *id,
                    loc: loc.clone(),
                    enable: enable(cond_stack),
                    assigned: Some((target.clone(), target.clone())),
                    scope: Vec::new(),
                });
                if !target.contains('.') {
                    dont_touch.push(target.clone());
                }
            }
            Stmt::Node { id, name, loc, .. } if !loc.is_unknown() => {
                out.push(DebugAnnotation {
                    module: module.name.clone(),
                    stmt: *id,
                    loc: loc.clone(),
                    enable: enable(cond_stack),
                    assigned: Some((name.clone(), name.clone())),
                    scope: Vec::new(),
                });
                dont_touch.push(name.clone());
            }
            Stmt::MemWrite { id, loc, .. } if !loc.is_unknown() => {
                out.push(DebugAnnotation {
                    module: module.name.clone(),
                    stmt: *id,
                    loc: loc.clone(),
                    enable: enable(cond_stack),
                    assigned: None,
                    scope: Vec::new(),
                });
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
                ..
            } => {
                cond_stack.push(cond.clone());
                annotate_stmts(module, then_body, cond_stack, out, dont_touch);
                cond_stack.pop();
                cond_stack.push(cond.clone().logical_not());
                annotate_stmts(module, else_body, cond_stack, out, dont_touch);
                cond_stack.pop();
            }
            _ => {}
        }
    }
}

/// A breakpoint candidate that survived optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBreakpoint {
    /// Defining module (instances of this module each get a concrete
    /// breakpoint when the symbol table is built).
    pub module: String,
    /// Statement identity.
    pub stmt: StmtId,
    /// Generator source position.
    pub loc: SourceLoc,
    /// Enable condition over module-local Low-form signals; `None` is
    /// unconditional.
    pub enable: Option<Expr>,
    /// Source variable assigned here → RTL signal holding the value.
    pub assigned: Option<(String, String)>,
    /// Variables in scope *before* the statement: source name → RTL
    /// signal.
    pub scope: Vec<(String, String)>,
}

/// A module-level generator variable mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugVariable {
    /// Defining module.
    pub module: String,
    /// Source-visible name (e.g. `io.out`, `counter`).
    pub name: String,
    /// Module-local RTL signal name.
    pub rtl: String,
}

/// Everything the symbol table needs, collected from the Low form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DebugTable {
    /// Surviving breakpoints, sorted by (file, line, col, stmt id) —
    /// the "absolute ordering of every potential breakpoint" that the
    /// scheduler precomputes before simulation (§3.2).
    pub breakpoints: Vec<SymBreakpoint>,
    /// Surviving generator variables.
    pub variables: Vec<DebugVariable>,
    /// Number of annotations dropped because optimization removed
    /// their signals (0 in debug mode; the 30% experiment measures
    /// this).
    pub dropped: usize,
}

/// Algorithm 1, pass 2: collect surviving annotations on the Low form.
#[derive(Debug, Clone, Default)]
pub struct CollectSymbols {
    _private: (),
}

impl CollectSymbols {
    /// Creates the pass.
    pub fn new() -> CollectSymbols {
        CollectSymbols::default()
    }

    /// Collects the debug table. Unlike transformation passes this
    /// produces a result instead of mutating the circuit.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for pipeline symmetry.
    pub fn collect(&self, state: &CircuitState) -> Result<DebugTable, PassError> {
        let mut table = DebugTable::default();
        for ann in state.annotations.debug() {
            let Some(module) = state.circuit.module(&ann.module) else {
                table.dropped += 1;
                continue;
            };
            let signals = module.signal_table(&state.circuit);
            let exists = |name: &str| signals.contains_key(name);

            // The assigned variable must still exist.
            let assigned = match &ann.assigned {
                Some((src, rtl)) => {
                    if exists(rtl) {
                        Some((src.clone(), rtl.clone()))
                    } else {
                        table.dropped += 1;
                        continue;
                    }
                }
                None => None,
            };
            // Every signal in the enable must exist, otherwise the
            // debugger could not evaluate it.
            if let Some(enable) = &ann.enable {
                if !enable.refs().iter().all(|r| exists(r)) {
                    table.dropped += 1;
                    continue;
                }
            }
            // Scope entries are filtered individually (a lost local is
            // not fatal to the breakpoint).
            let scope: Vec<(String, String)> = ann
                .scope
                .iter()
                .filter(|(_, rtl)| exists(rtl))
                .cloned()
                .collect();
            table.breakpoints.push(SymBreakpoint {
                module: ann.module.clone(),
                stmt: ann.stmt,
                loc: ann.loc.clone(),
                enable: ann.enable.clone(),
                assigned,
                scope,
            });
        }
        // Generator variables.
        for module in &state.circuit.modules {
            let signals = module.signal_table(&state.circuit);
            for (name, rtl) in &module.gen_vars {
                if signals.contains_key(rtl) {
                    table.variables.push(DebugVariable {
                        module: module.name.clone(),
                        name: name.clone(),
                        rtl: rtl.clone(),
                    });
                } else {
                    table.dropped += 1;
                }
            }
        }
        // Precompute the absolute breakpoint ordering (§3.2): lexical
        // order by file, line, column, then statement id.
        table
            .breakpoints
            .sort_by(|a, b| (&a.loc, a.stmt).cmp(&(&b.loc, b.stmt)));
        Ok(table)
    }
}

impl Pass for CollectSymbols {
    fn name(&self) -> &'static str {
        "collect-symbols"
    }

    /// Running as a plain pass validates collectability but discards
    /// the table; use [`CollectSymbols::collect`] to keep it.
    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        self.collect(state).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::stmt::{Circuit, Port, PortDir};

    fn loc(line: u32) -> SourceLoc {
        SourceLoc::new("gen.rs", line, 1)
    }

    fn sample_state() -> CircuitState {
        let mut m = Module::new("m", loc(1));
        m.ports = vec![
            Port {
                name: "c".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(1),
            },
            Port {
                name: "d".into(),
                dir: PortDir::Input,
                width: 1,
                loc: loc(1),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(1),
            },
        ];
        m.gen_vars = vec![("io.out".into(), "out".into())];
        m.stmts = vec![
            Stmt::Wire {
                id: StmtId(1),
                name: "w".into(),
                width: 8,
                loc: loc(2),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "w".into(),
                expr: Expr::lit(0, 8),
                loc: loc(2),
            },
            Stmt::When {
                id: StmtId(3),
                cond: Expr::var("c"),
                then_body: vec![Stmt::When {
                    id: StmtId(4),
                    cond: Expr::var("d"),
                    then_body: vec![Stmt::Connect {
                        id: StmtId(5),
                        target: "w".into(),
                        expr: Expr::lit(7, 8),
                        loc: loc(5),
                    }],
                    else_body: vec![],
                    loc: loc(4),
                }],
                else_body: vec![Stmt::Connect {
                    id: StmtId(6),
                    target: "w".into(),
                    expr: Expr::lit(9, 8),
                    loc: loc(7),
                }],
                loc: loc(3),
            },
            Stmt::Connect {
                id: StmtId(7),
                target: "out".into(),
                expr: Expr::var("w"),
                loc: loc(9),
            },
        ];
        CircuitState::new(Circuit::new("m", vec![m]))
    }

    #[test]
    fn pass1_computes_nested_enables() {
        let mut state = sample_state();
        AnnotateDebugInfo::new().run(&mut state).unwrap();
        let anns = state.annotations.debug();
        // Statements 2, 5, 6, 7 are annotated.
        assert_eq!(anns.len(), 4);
        let by_stmt = |id: u32| anns.iter().find(|a| a.stmt == StmtId(id)).unwrap();
        assert!(by_stmt(2).enable.is_none());
        // Nested when: c AND d.
        assert_eq!(by_stmt(5).enable.as_ref().unwrap().to_string(), "(c & d)");
        // Else branch: NOT c.
        assert_eq!(by_stmt(6).enable.as_ref().unwrap().to_string(), "~(c)");
        assert!(by_stmt(7).enable.is_none());
    }

    #[test]
    fn debug_mode_marks_dont_touch() {
        let mut state = sample_state();
        state.annotations.set_debug_mode(true);
        AnnotateDebugInfo::new().run(&mut state).unwrap();
        assert!(state.annotations.is_dont_touch("m", "w"));
        assert!(state.annotations.is_dont_touch("m", "out"));
        let mut state2 = sample_state();
        AnnotateDebugInfo::new().run(&mut state2).unwrap();
        assert_eq!(state2.annotations.dont_touch_count(), 0);
    }

    #[test]
    fn collect_drops_missing_signals() {
        let mut state = sample_state();
        AnnotateDebugInfo::new().run(&mut state).unwrap();
        // Simulate optimization nuking `w`: remove its statements.
        let m = state.circuit.module_mut("m").unwrap();
        m.stmts
            .retain(|s| !matches!(s, Stmt::Wire { name, .. } if name == "w"));
        m.stmts
            .retain(|s| !matches!(s, Stmt::Connect { target, .. } if target == "w"));
        let table = CollectSymbols::new().collect(&state).unwrap();
        // The three `w` connects are dropped; out connect survives.
        assert_eq!(table.breakpoints.len(), 1);
        assert_eq!(table.breakpoints[0].stmt, StmtId(7));
        assert_eq!(table.dropped, 3);
        // Generator variable io.out still resolves.
        assert_eq!(table.variables.len(), 1);
    }

    #[test]
    fn collect_preserves_and_orders_everything_when_intact() {
        let mut state = sample_state();
        AnnotateDebugInfo::new().run(&mut state).unwrap();
        let table = CollectSymbols::new().collect(&state).unwrap();
        assert_eq!(table.breakpoints.len(), 4);
        assert_eq!(table.dropped, 0);
        // Sorted by line.
        let lines: Vec<u32> = table.breakpoints.iter().map(|b| b.loc.line).collect();
        assert_eq!(lines, vec![2, 5, 7, 9]);
    }

    #[test]
    fn full_pipeline_debug_vs_release_sizes() {
        // Through the whole standard pipeline, debug mode must retain
        // at least as many breakpoints as release mode.
        let mut release = sample_state();
        let release_table = crate::passes::compile(&mut release, false).unwrap();
        let mut debug = sample_state();
        let debug_table = crate::passes::compile(&mut debug, true).unwrap();
        assert!(debug_table.breakpoints.len() >= release_table.breakpoints.len());
        // In this tiny constant-foldable module, release mode loses
        // breakpoints to optimization while debug mode keeps all four.
        assert_eq!(debug_table.breakpoints.len(), 4);
        assert_eq!(debug_table.dropped, 0);
    }

    #[test]
    fn enable_with_wire_condition_survives_pipeline() {
        // A when condition reading an input combination must produce
        // an evaluatable enable after lowering.
        let mut m = Module::new("m", loc(1));
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(1),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(1),
            },
        ];
        m.stmts = vec![
            Stmt::Wire {
                id: StmtId(1),
                name: "acc".into(),
                width: 8,
                loc: loc(2),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "acc".into(),
                expr: Expr::lit(0, 8),
                loc: loc(2),
            },
            Stmt::When {
                id: StmtId(3),
                cond: Expr::binary(
                    BinaryOp::Eq,
                    Expr::binary(BinaryOp::Rem, Expr::var("a"), Expr::lit(2, 8)),
                    Expr::lit(1, 8),
                ),
                then_body: vec![Stmt::Connect {
                    id: StmtId(4),
                    target: "acc".into(),
                    expr: Expr::var("a"),
                    loc: loc(4),
                }],
                else_body: vec![],
                loc: loc(3),
            },
            Stmt::Connect {
                id: StmtId(5),
                target: "out".into(),
                expr: Expr::var("acc"),
                loc: loc(6),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        let table = crate::passes::compile(&mut state, false).unwrap();
        let bp = table
            .breakpoints
            .iter()
            .find(|b| b.loc.line == 4)
            .expect("breakpoint at line 4 survives");
        let enable = bp.enable.as_ref().unwrap();
        // All enable refs are real Low-form signals.
        let signals = state.circuit.top_module().signal_table(&state.circuit);
        for r in enable.refs() {
            assert!(signals.contains_key(&r), "enable ref {r} missing");
        }
    }
}
