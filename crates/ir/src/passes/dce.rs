//! Dead code elimination (FIRRTL default optimization, §4.1).
//!
//! Removes nodes, wires, registers and memory read ports whose values
//! cannot reach an observable root:
//!
//! * output-port connects,
//! * instance-input connects,
//! * memory writes,
//! * `DontTouch` signals (debug mode keeps everything annotated).
//!
//! Register liveness is computed with a worklist: a register's
//! next-value expression only keeps things alive if the register itself
//! is live. This is exactly the mechanism by which optimized builds
//! lose debug visibility — the symbol collection pass afterwards drops
//! annotations whose signals disappeared, mirroring `-O2` debug info.

use std::collections::{HashMap, HashSet};

use crate::annot::CircuitState;
use crate::expr::Expr;
use crate::passes::{Pass, PassError};
use crate::stmt::Stmt;

/// The dead-code-elimination pass.
#[derive(Debug, Clone, Default)]
pub struct Dce {
    _private: (),
}

impl Dce {
    /// Creates the pass.
    pub fn new() -> Dce {
        Dce::default()
    }
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        for module_idx in 0..state.circuit.modules.len() {
            let module_name = state.circuit.modules[module_idx].name.clone();
            let module = &state.circuit.modules[module_idx];

            // Defining expression(s) for every named signal.
            let mut defs: HashMap<String, Vec<&Expr>> = HashMap::new();
            // Register names (their connect is their next value).
            let mut regs: HashSet<String> = HashSet::new();
            // Connect target -> expr.
            let mut connects: HashMap<String, &Expr> = HashMap::new();
            for stmt in &module.stmts {
                match stmt {
                    Stmt::Node { name, expr, .. } => {
                        defs.entry(name.clone()).or_default().push(expr);
                    }
                    Stmt::Reg { name, .. } => {
                        regs.insert(name.clone());
                    }
                    Stmt::MemRead { name, addr, .. } => {
                        defs.entry(name.clone()).or_default().push(addr);
                    }
                    Stmt::Connect { target, expr, .. } => {
                        connects.insert(target.clone(), expr);
                    }
                    _ => {}
                }
            }

            // Roots.
            let mut live: HashSet<String> = HashSet::new();
            let mut work: Vec<String> = Vec::new();
            let add = |name: &str, live: &mut HashSet<String>, work: &mut Vec<String>| {
                if live.insert(name.to_owned()) {
                    work.push(name.to_owned());
                }
            };
            let out_ports: HashSet<String> = module
                .ports
                .iter()
                .filter(|p| p.dir == crate::stmt::PortDir::Output)
                .map(|p| p.name.clone())
                .collect();
            for stmt in &module.stmts {
                match stmt {
                    Stmt::Connect { target, expr, .. }
                        // Output ports and instance inputs are
                        // observable; register connects only when the
                        // register is live (handled in the worklist).
                        if (out_ports.contains(target.as_str()) || target.contains('.')) => {
                            for r in expr.refs() {
                                add(&r, &mut live, &mut work);
                            }
                        }
                    Stmt::MemWrite { addr, data, en, .. } => {
                        for e in [addr, data, en] {
                            for r in e.refs() {
                                add(&r, &mut live, &mut work);
                            }
                        }
                    }
                    _ => {}
                }
            }
            // DontTouch roots.
            for stmt in &module.stmts {
                if let Some(name) = stmt.declared_signal() {
                    if state.annotations.is_dont_touch(&module_name, name) {
                        add(name, &mut live, &mut work);
                    }
                }
            }

            // Worklist propagation.
            while let Some(name) = work.pop() {
                if let Some(exprs) = defs.get(&name) {
                    for e in exprs {
                        for r in e.refs() {
                            add(&r, &mut live, &mut work);
                        }
                    }
                }
                if regs.contains(&name) {
                    // The register is live: its next-value connect
                    // contributes.
                    if let Some(expr) = connects.get(&name) {
                        for r in expr.refs() {
                            add(&r, &mut live, &mut work);
                        }
                    }
                }
                // Wires: their single driver contributes.
                if !regs.contains(&name) {
                    if let Some(expr) = connects.get(&name) {
                        for r in expr.refs() {
                            add(&r, &mut live, &mut work);
                        }
                    }
                }
            }

            // Memories stay live if any read port is live or any write
            // exists whose memory has a live read port; conservatively
            // keep memories with live reads, and drop writes to
            // memories with no live read ports only when the memory is
            // also not DontTouch.
            let mut live_mems: HashSet<String> = HashSet::new();
            for stmt in &module.stmts {
                if let Stmt::MemRead { mem, name, .. } = stmt {
                    if live.contains(name) {
                        live_mems.insert(mem.clone());
                    }
                }
            }
            for stmt in &module.stmts {
                if let Stmt::Mem { name, .. } = stmt {
                    if state.annotations.is_dont_touch(&module_name, name) {
                        live_mems.insert(name.clone());
                    }
                }
            }

            let module = &mut state.circuit.modules[module_idx];
            module.stmts.retain(|s| match s {
                Stmt::Node { name, .. } => live.contains(name),
                Stmt::Wire { name, .. } => live.contains(name),
                Stmt::Reg { name, .. } => live.contains(name),
                Stmt::MemRead { name, .. } => live.contains(name),
                Stmt::Mem { name, .. } => live_mems.contains(name),
                Stmt::MemWrite { mem, .. } => live_mems.contains(mem),
                Stmt::Connect { target, .. } => {
                    out_ports.contains(target.as_str())
                        || target.contains('.')
                        || live.contains(target)
                }
                Stmt::Instance { .. } => true,
                Stmt::When { .. } => true,
            });
            // Drop gen_vars that no longer resolve.
            let live_ref = &live;
            let module_ports: HashSet<String> =
                module.ports.iter().map(|p| p.name.clone()).collect();
            module.gen_vars.retain(|(_, rtl)| {
                live_ref.contains(rtl) || module_ports.contains(rtl) || rtl.contains('.')
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::CircuitState;
    use crate::expr::BinaryOp;
    use crate::source::SourceLoc;
    use crate::stmt::{Circuit, Module, Port, PortDir, StmtId};

    fn loc() -> SourceLoc {
        SourceLoc::new("t.rs", 1, 1)
    }

    fn base_module() -> Module {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        m
    }

    #[test]
    fn removes_unreferenced_node() {
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "dead".into(),
                expr: Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(1, 8)),
                loc: loc(),
            },
            Stmt::Node {
                id: StmtId(2),
                name: "alive".into(),
                expr: Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(2, 8)),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "out".into(),
                expr: Expr::var("alive"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Dce::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(!m.stmts.iter().any(|s| s.declared_signal() == Some("dead")));
        assert!(m.stmts.iter().any(|s| s.declared_signal() == Some("alive")));
        state.circuit.validate().unwrap();
    }

    #[test]
    fn dont_touch_keeps_dead_node() {
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "dead".into(),
                expr: Expr::lit(1, 8),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "out".into(),
                expr: Expr::var("a"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        state.annotations.add_dont_touch("m", "dead");
        Dce::new().run(&mut state).unwrap();
        assert!(state
            .circuit
            .top_module()
            .stmts
            .iter()
            .any(|s| s.declared_signal() == Some("dead")));
    }

    #[test]
    fn dead_register_cycle_removed() {
        // r1.next = r2, r2.next = r1, neither observable -> both go.
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Reg {
                id: StmtId(1),
                name: "r1".into(),
                width: 8,
                init: None,
                loc: loc(),
            },
            Stmt::Reg {
                id: StmtId(2),
                name: "r2".into(),
                width: 8,
                init: None,
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "r1".into(),
                expr: Expr::var("r2"),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(4),
                target: "r2".into(),
                expr: Expr::var("r1"),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(5),
                target: "out".into(),
                expr: Expr::var("a"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Dce::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(!m.stmts.iter().any(|s| s.declared_signal() == Some("r1")));
        assert!(!m.stmts.iter().any(|s| s.declared_signal() == Some("r2")));
    }

    #[test]
    fn live_register_feedback_kept() {
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Reg {
                id: StmtId(1),
                name: "count".into(),
                width: 8,
                init: None,
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "count".into(),
                expr: Expr::binary(BinaryOp::Add, Expr::var("count"), Expr::lit(1, 8)),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "out".into(),
                expr: Expr::var("count"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Dce::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(m.stmts.iter().any(|s| s.declared_signal() == Some("count")));
        assert_eq!(
            m.stmts
                .iter()
                .filter(|s| matches!(s, Stmt::Connect { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn unread_memory_removed() {
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Mem {
                id: StmtId(1),
                name: "ram".into(),
                width: 8,
                depth: 4,
                loc: loc(),
            },
            Stmt::MemWrite {
                id: StmtId(2),
                mem: "ram".into(),
                addr: Expr::lit(0, 2),
                data: Expr::var("a"),
                en: Expr::lit(1, 1),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "out".into(),
                expr: Expr::var("a"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Dce::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(!m.stmts.iter().any(|s| matches!(s, Stmt::Mem { .. })));
        assert!(!m.stmts.iter().any(|s| matches!(s, Stmt::MemWrite { .. })));
    }

    #[test]
    fn read_memory_kept() {
        let mut m = base_module();
        m.stmts = vec![
            Stmt::Mem {
                id: StmtId(1),
                name: "ram".into(),
                width: 8,
                depth: 4,
                loc: loc(),
            },
            Stmt::MemWrite {
                id: StmtId(2),
                mem: "ram".into(),
                addr: Expr::lit(0, 2),
                data: Expr::var("a"),
                en: Expr::lit(1, 1),
                loc: loc(),
            },
            Stmt::MemRead {
                id: StmtId(3),
                mem: "ram".into(),
                name: "rdata".into(),
                addr: Expr::lit(0, 2),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(4),
                target: "out".into(),
                expr: Expr::var("rdata"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Dce::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(m.stmts.iter().any(|s| matches!(s, Stmt::Mem { .. })));
        assert!(m.stmts.iter().any(|s| matches!(s, Stmt::MemWrite { .. })));
        assert!(m.stmts.iter().any(|s| matches!(s, Stmt::MemRead { .. })));
    }
}
