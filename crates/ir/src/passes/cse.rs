//! Common sub-expression elimination (FIRRTL default optimization,
//! §4.1).
//!
//! Two nodes with structurally identical defining expressions are
//! merged: the later node is removed and all references are rewritten
//! to the first. `DontTouch` nodes are never removed (debug mode), but
//! other nodes may still be rewritten to reference them.
//!
//! Merges are reported to the annotation store so that symbol-table
//! variable mappings follow the surviving name (the paper's
//! "work with compiler optimization" requirement).

use std::collections::HashMap;

use crate::annot::CircuitState;
use crate::expr::Expr;
use crate::passes::{Pass, PassError};
use crate::stmt::Stmt;

/// The CSE pass.
#[derive(Debug, Clone, Default)]
pub struct Cse {
    _private: (),
}

impl Cse {
    /// Creates the pass.
    pub fn new() -> Cse {
        Cse::default()
    }
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, state: &mut CircuitState) -> Result<(), PassError> {
        for module_idx in 0..state.circuit.modules.len() {
            let module_name = state.circuit.modules[module_idx].name.clone();
            // Iterate: merging nodes can make further expressions
            // identical.
            loop {
                let mut renames: HashMap<String, String> = HashMap::new();
                {
                    let module = &state.circuit.modules[module_idx];
                    let mut seen: HashMap<&Expr, &str> = HashMap::new();
                    for stmt in &module.stmts {
                        let Stmt::Node { name, expr, .. } = stmt else {
                            continue;
                        };
                        // Trivial alias nodes (`a = b`) are also folded
                        // into their referent.
                        if let Expr::Ref(target) = expr {
                            if !state.annotations.is_dont_touch(&module_name, name) {
                                renames.insert(name.clone(), target.clone());
                                continue;
                            }
                        }
                        match seen.get(expr) {
                            Some(first) => {
                                if !state.annotations.is_dont_touch(&module_name, name) {
                                    renames.insert(name.clone(), (*first).to_owned());
                                }
                            }
                            None => {
                                seen.insert(expr, name);
                            }
                        }
                    }
                }
                if renames.is_empty() {
                    break;
                }
                // Resolve chains so every rename points at a survivor.
                let resolve = |name: &str| -> Option<String> {
                    let mut cur = renames.get(name)?;
                    for _ in 0..renames.len() {
                        match renames.get(cur) {
                            Some(next) => cur = next,
                            None => break,
                        }
                    }
                    Some(cur.clone())
                };
                let module = &mut state.circuit.modules[module_idx];
                module.stmts.retain(|s| match s {
                    Stmt::Node { name, .. } => !renames.contains_key(name),
                    _ => true,
                });
                for stmt in &mut module.stmts {
                    match stmt {
                        Stmt::Node { expr, .. } | Stmt::Connect { expr, .. } => {
                            *expr = expr.rename_refs(&resolve);
                        }
                        Stmt::MemRead { addr, .. } => {
                            *addr = addr.rename_refs(&resolve);
                        }
                        Stmt::MemWrite { addr, data, en, .. } => {
                            *addr = addr.rename_refs(&resolve);
                            *data = data.rename_refs(&resolve);
                            *en = en.rename_refs(&resolve);
                        }
                        _ => {}
                    }
                }
                // Generator variable map and annotations follow.
                for (_, rtl) in &mut module.gen_vars {
                    if let Some(new_name) = resolve(rtl) {
                        *rtl = new_name;
                    }
                }
                state.annotations.apply_renames(&module_name, &renames);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::{CircuitState, DebugAnnotation};
    use crate::expr::BinaryOp;
    use crate::source::SourceLoc;
    use crate::stmt::{Circuit, Module, Port, PortDir, StmtId};

    fn loc() -> SourceLoc {
        SourceLoc::new("t.rs", 1, 1)
    }

    fn two_identical_nodes() -> CircuitState {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "b".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        let sum = || Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("b"));
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "x".into(),
                expr: sum(),
                loc: loc(),
            },
            Stmt::Node {
                id: StmtId(2),
                name: "y".into(),
                expr: sum(),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(3),
                target: "out".into(),
                expr: Expr::var("y"),
                loc: loc(),
            },
        ];
        CircuitState::new(Circuit::new("m", vec![m]))
    }

    #[test]
    fn merges_identical_nodes() {
        let mut state = two_identical_nodes();
        Cse::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        // y removed; out references x.
        assert!(!m.stmts.iter().any(|s| s.declared_signal() == Some("y")));
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(out, Expr::var("x"));
        state.circuit.validate().unwrap();
    }

    #[test]
    fn dont_touch_nodes_survive() {
        let mut state = two_identical_nodes();
        state.annotations.add_dont_touch("m", "y");
        Cse::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(m.stmts.iter().any(|s| s.declared_signal() == Some("y")));
        assert!(m.stmts.iter().any(|s| s.declared_signal() == Some("x")));
    }

    #[test]
    fn annotations_follow_merge() {
        let mut state = two_identical_nodes();
        state.annotations.add_debug(DebugAnnotation {
            module: "m".into(),
            stmt: StmtId(2),
            loc: loc(),
            enable: Some(Expr::var("y")),
            assigned: Some(("v".into(), "y".into())),
            scope: vec![("v".into(), "y".into())],
        });
        Cse::new().run(&mut state).unwrap();
        let ann = &state.annotations.debug()[0];
        assert_eq!(ann.assigned.as_ref().unwrap().1, "x");
        assert_eq!(ann.scope[0].1, "x");
        assert_eq!(ann.enable.as_ref().unwrap().to_string(), "x");
    }

    #[test]
    fn alias_nodes_collapse() {
        let mut m = Module::new("m", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "alias".into(),
                expr: Expr::var("a"),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "out".into(),
                expr: Expr::var("alias"),
                loc: loc(),
            },
        ];
        let mut state = CircuitState::new(Circuit::new("m", vec![m]));
        Cse::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        assert!(!m.stmts.iter().any(|s| s.declared_signal() == Some("alias")));
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(out, Expr::var("a"));
    }

    #[test]
    fn chained_merges_resolve() {
        // x = a+b; y = a+b; z = y (alias) -> everything lands on x.
        let mut state = two_identical_nodes();
        let m = state.circuit.module_mut("m").unwrap();
        m.stmts.insert(
            2,
            Stmt::Node {
                id: StmtId(9),
                name: "z".into(),
                expr: Expr::var("y"),
                loc: loc(),
            },
        );
        // Rewire out to z.
        if let Some(Stmt::Connect { expr, .. }) = m
            .stmts
            .iter_mut()
            .find(|s| matches!(s, Stmt::Connect { .. }))
        {
            *expr = Expr::var("z");
        }
        Cse::new().run(&mut state).unwrap();
        let m = state.circuit.top_module();
        let out = m
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(out, Expr::var("x"));
        state.circuit.validate().unwrap();
    }
}
