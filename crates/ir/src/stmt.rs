//! IR statements, modules and circuits.
//!
//! The IR has two forms mirroring FIRRTL's High and Low forms (§4.1 of
//! the paper):
//!
//! * **High form**: output of the generator frontend. `when` blocks with
//!   nested bodies, multiple procedural connects to the same wire
//!   (blocking, read-after-write semantics, as in kratos/Mamba-style
//!   combinational blocks), registers with next-value connects
//!   (non-blocking: reads see the pre-edge value).
//! * **Low form**: after [`crate::passes::ExpandWhens`]. No `when`
//!   statements; every wire/output/instance-input has exactly one
//!   connect; intermediate procedural values are explicit SSA nodes.
//!
//! Both forms share the same data structures; [`Module::check_low`]
//! validates the Low-form restrictions.

use std::collections::HashMap;
use std::fmt;

use bits::Bits;

use crate::expr::{Expr, ExprError};
use crate::source::SourceLoc;

/// Unique statement identity, stable across passes.
///
/// Algorithm 1 annotates statements in the High form (pass 1) and must
/// find them again after optimization (pass 2); ids provide that link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name. Bundle fields are flattened with `.` separators by
    /// the frontend (e.g. `io.out`).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Width in bits.
    pub width: u32,
    /// Generator source position.
    pub loc: SourceLoc,
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Combinational wire declaration (procedural assignment target).
    Wire {
        /// Statement id.
        id: StmtId,
        /// Signal name.
        name: String,
        /// Width in bits.
        width: u32,
        /// Source position.
        loc: SourceLoc,
    },
    /// Register declaration. Clocked by the module's implicit clock;
    /// when `init` is given and the implicit `reset` port is high the
    /// register loads `init` at the clock edge.
    Reg {
        /// Statement id.
        id: StmtId,
        /// Signal name.
        name: String,
        /// Width in bits.
        width: u32,
        /// Synchronous reset value.
        init: Option<Bits>,
        /// Source position.
        loc: SourceLoc,
    },
    /// A named intermediate value (assigned exactly once).
    Node {
        /// Statement id.
        id: StmtId,
        /// Signal name.
        name: String,
        /// Defining expression.
        expr: Expr,
        /// Source position.
        loc: SourceLoc,
    },
    /// Procedural connect `target := expr`.
    Connect {
        /// Statement id.
        id: StmtId,
        /// Target signal: wire, register, output port or instance
        /// input (`inst.port`).
        target: String,
        /// Driven value.
        expr: Expr,
        /// Source position.
        loc: SourceLoc,
    },
    /// Conditional block (High form only).
    When {
        /// Statement id.
        id: StmtId,
        /// 1-bit condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
        /// Source position.
        loc: SourceLoc,
    },
    /// Child module instantiation.
    Instance {
        /// Statement id.
        id: StmtId,
        /// Instance name.
        name: String,
        /// Instantiated module name.
        module: String,
        /// Source position.
        loc: SourceLoc,
    },
    /// Memory declaration (word-addressed array).
    Mem {
        /// Statement id.
        id: StmtId,
        /// Memory name.
        name: String,
        /// Word width in bits.
        width: u32,
        /// Number of words.
        depth: u32,
        /// Source position.
        loc: SourceLoc,
    },
    /// Combinational read port: defines signal `name` as `mem[addr]`.
    MemRead {
        /// Statement id.
        id: StmtId,
        /// Memory name.
        mem: String,
        /// Defined data signal name.
        name: String,
        /// Address expression.
        addr: Expr,
        /// Source position.
        loc: SourceLoc,
    },
    /// Synchronous write port: at the clock edge, if `en`,
    /// `mem[addr] <= data`.
    MemWrite {
        /// Statement id.
        id: StmtId,
        /// Memory name.
        mem: String,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Write enable (1 bit).
        en: Expr,
        /// Source position.
        loc: SourceLoc,
    },
}

impl Stmt {
    /// The statement id.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Wire { id, .. }
            | Stmt::Reg { id, .. }
            | Stmt::Node { id, .. }
            | Stmt::Connect { id, .. }
            | Stmt::When { id, .. }
            | Stmt::Instance { id, .. }
            | Stmt::Mem { id, .. }
            | Stmt::MemRead { id, .. }
            | Stmt::MemWrite { id, .. } => *id,
        }
    }

    /// The statement's source locator.
    pub fn loc(&self) -> &SourceLoc {
        match self {
            Stmt::Wire { loc, .. }
            | Stmt::Reg { loc, .. }
            | Stmt::Node { loc, .. }
            | Stmt::Connect { loc, .. }
            | Stmt::When { loc, .. }
            | Stmt::Instance { loc, .. }
            | Stmt::Mem { loc, .. }
            | Stmt::MemRead { loc, .. }
            | Stmt::MemWrite { loc, .. } => loc,
        }
    }

    /// The signal this statement declares, if any.
    pub fn declared_signal(&self) -> Option<&str> {
        match self {
            Stmt::Wire { name, .. }
            | Stmt::Reg { name, .. }
            | Stmt::Node { name, .. }
            | Stmt::MemRead { name, .. } => Some(name),
            _ => None,
        }
    }
}

/// Kinds of locally declared signals (excluding ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Input port.
    Input,
    /// Output port.
    Output,
    /// Combinational wire.
    Wire,
    /// Register output.
    Reg,
    /// Single-assignment node.
    Node,
    /// Memory read-port data.
    MemRead,
    /// Instance port alias (`inst.port`).
    InstancePort,
}

/// A hardware module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name, unique in the circuit.
    pub name: String,
    /// Ports.
    pub ports: Vec<Port>,
    /// Body.
    pub stmts: Vec<Stmt>,
    /// Generator-level symbol map: source-visible variable name →
    /// RTL signal name in this module ("generator variables", §3.4).
    pub gen_vars: Vec<(String, String)>,
    /// Where the generator defined this module.
    pub loc: SourceLoc,
}

/// Validation errors for modules and circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Two declarations share a name.
    DuplicateSignal {
        /// Module name.
        module: String,
        /// Conflicting signal name.
        name: String,
    },
    /// A connect targets something that is not connectable.
    BadConnectTarget {
        /// Module name.
        module: String,
        /// Offending target.
        target: String,
    },
    /// Expression problem (unknown signal / width mismatch).
    Expr {
        /// Module name.
        module: String,
        /// Underlying error.
        source: ExprError,
    },
    /// Width mismatch between connect target and expression.
    ConnectWidth {
        /// Module name.
        module: String,
        /// Target name.
        target: String,
        /// Target width.
        expected: u32,
        /// Expression width.
        got: u32,
    },
    /// Instance references an unknown module.
    UnknownModule {
        /// Referencing module.
        module: String,
        /// Missing module name.
        instantiated: String,
    },
    /// The module hierarchy contains a cycle.
    RecursiveInstantiation(String),
    /// A Low-form constraint is violated.
    NotLowForm {
        /// Module name.
        module: String,
        /// Explanation.
        detail: String,
    },
    /// The circuit has no module named as top.
    MissingTop(String),
    /// A procedural signal is read before any assignment.
    UninitializedRead {
        /// Module name.
        module: String,
        /// Offending signal.
        signal: String,
    },
    /// A conditional assignment has no prior default value.
    ConditionalWithoutDefault {
        /// Module name.
        module: String,
        /// Offending target.
        target: String,
    },
    /// A post-compile check hook (e.g. a deny-level lint gate)
    /// rejected the circuit. The payload is the check's rendered
    /// diagnostics.
    CheckFailed(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateSignal { module, name } => {
                write!(f, "duplicate signal {name} in module {module}")
            }
            IrError::BadConnectTarget { module, target } => {
                write!(f, "cannot connect to {target} in module {module}")
            }
            IrError::Expr { module, source } => write!(f, "in module {module}: {source}"),
            IrError::ConnectWidth {
                module,
                target,
                expected,
                got,
            } => write!(
                f,
                "connect to {target} in {module}: width {got} does not match {expected}"
            ),
            IrError::UnknownModule {
                module,
                instantiated,
            } => write!(
                f,
                "module {module} instantiates unknown module {instantiated}"
            ),
            IrError::RecursiveInstantiation(m) => {
                write!(f, "recursive instantiation involving module {m}")
            }
            IrError::NotLowForm { module, detail } => {
                write!(f, "module {module} is not in Low form: {detail}")
            }
            IrError::MissingTop(t) => write!(f, "circuit top module {t} not found"),
            IrError::UninitializedRead { module, signal } => {
                write!(
                    f,
                    "signal {signal} read before assignment in module {module}"
                )
            }
            IrError::ConditionalWithoutDefault { module, target } => write!(
                f,
                "conditional assignment to {target} in module {module} has no default"
            ),
            IrError::CheckFailed(detail) => {
                write!(f, "post-compile check failed: {detail}")
            }
        }
    }
}

impl std::error::Error for IrError {}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>, loc: SourceLoc) -> Module {
        Module {
            name: name.into(),
            ports: Vec::new(),
            stmts: Vec::new(),
            gen_vars: Vec::new(),
            loc,
        }
    }

    /// All signals visible in this module, with widths and kinds.
    /// Instance ports appear as `inst.port`. Requires the circuit for
    /// child module port lookups.
    pub fn signal_table(&self, circuit: &Circuit) -> HashMap<String, (u32, SignalKind)> {
        let mut table = HashMap::new();
        for p in &self.ports {
            let kind = match p.dir {
                PortDir::Input => SignalKind::Input,
                PortDir::Output => SignalKind::Output,
            };
            table.insert(p.name.clone(), (p.width, kind));
        }
        for stmt in walk_stmts(&self.stmts) {
            match stmt {
                Stmt::Wire { name, width, .. } => {
                    table.insert(name.clone(), (*width, SignalKind::Wire));
                }
                Stmt::Reg { name, width, .. } => {
                    table.insert(name.clone(), (*width, SignalKind::Reg));
                }
                Stmt::Node { name, expr, .. } => {
                    // Node width derives from its expression; tolerate
                    // failures here (validation reports them properly).
                    let lookup = |n: &str| table.get(n).map(|(w, _)| *w);
                    if let Ok(w) = expr.width(&lookup) {
                        table.insert(name.clone(), (w, SignalKind::Node));
                    }
                }
                Stmt::MemRead { name, mem, .. } => {
                    if let Some(w) = self.mem_width(mem) {
                        table.insert(name.clone(), (w, SignalKind::MemRead));
                    }
                }
                Stmt::Instance { name, module, .. } => {
                    if let Some(child) = circuit.module(module) {
                        for p in &child.ports {
                            table.insert(
                                format!("{name}.{}", p.name),
                                (p.width, SignalKind::InstancePort),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        table
    }

    /// The width of a declared memory.
    pub fn mem_width(&self, mem: &str) -> Option<u32> {
        walk_stmts(&self.stmts).find_map(|s| match s {
            Stmt::Mem { name, width, .. } if name == mem => Some(*width),
            _ => None,
        })
    }

    /// The `(width, depth)` of a declared memory.
    pub fn mem_shape(&self, mem: &str) -> Option<(u32, u32)> {
        walk_stmts(&self.stmts).find_map(|s| match s {
            Stmt::Mem {
                name, width, depth, ..
            } if name == mem => Some((*width, *depth)),
            _ => None,
        })
    }

    /// Whether a signal may be the target of a connect, and in which
    /// role.
    fn connectable(&self, circuit: &Circuit, target: &str) -> bool {
        let table = self.signal_table(circuit);
        match table.get(target) {
            Some((_, SignalKind::Wire))
            | Some((_, SignalKind::Reg))
            | Some((_, SignalKind::Output)) => true,
            Some((_, SignalKind::InstancePort)) => {
                // Only instance *inputs* are connectable.
                let (inst, port) = target.split_once('.').expect("instance port has dot");
                self.instance_module(inst)
                    .and_then(|m| circuit.module(m))
                    .and_then(|m| m.ports.iter().find(|p| p.name == port))
                    .is_some_and(|p| p.dir == PortDir::Input)
            }
            _ => false,
        }
    }

    /// The module name instantiated under `inst`, if any.
    pub fn instance_module(&self, inst: &str) -> Option<&str> {
        walk_stmts(&self.stmts).find_map(|s| match s {
            Stmt::Instance { name, module, .. } if name == inst => Some(module.as_str()),
            _ => None,
        })
    }

    /// All instances `(instance_name, module_name)` in order.
    pub fn instances(&self) -> Vec<(&str, &str)> {
        walk_stmts(&self.stmts)
            .filter_map(|s| match s {
                Stmt::Instance { name, module, .. } => Some((name.as_str(), module.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Validates the module in High form: unique names, known refs,
    /// width correctness, connect targets legal, when conditions 1 bit.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, circuit: &Circuit) -> Result<(), IrError> {
        // Unique declarations (ports + declared signals + mems + instances).
        let mut seen = std::collections::HashSet::new();
        for p in &self.ports {
            if !seen.insert(p.name.clone()) {
                return Err(IrError::DuplicateSignal {
                    module: self.name.clone(),
                    name: p.name.clone(),
                });
            }
        }
        for stmt in walk_stmts(&self.stmts) {
            let declared = match stmt {
                Stmt::Mem { name, .. } | Stmt::Instance { name, .. } => Some(name.as_str()),
                s => s.declared_signal(),
            };
            if let Some(name) = declared {
                if !seen.insert(name.to_owned()) {
                    return Err(IrError::DuplicateSignal {
                        module: self.name.clone(),
                        name: name.to_owned(),
                    });
                }
            }
            if let Stmt::Instance { module, .. } = stmt {
                if circuit.module(module).is_none() {
                    return Err(IrError::UnknownModule {
                        module: self.name.clone(),
                        instantiated: module.clone(),
                    });
                }
            }
        }

        let table = self.signal_table(circuit);
        let width_of = |n: &str| table.get(n).map(|(w, _)| *w);
        let check_expr = |e: &Expr| -> Result<u32, IrError> {
            e.width(&width_of).map_err(|source| IrError::Expr {
                module: self.name.clone(),
                source,
            })
        };
        for stmt in walk_stmts(&self.stmts) {
            match stmt {
                Stmt::Node { expr, .. } => {
                    check_expr(expr)?;
                }
                Stmt::Connect { target, expr, .. } => {
                    if !self.connectable(circuit, target) {
                        return Err(IrError::BadConnectTarget {
                            module: self.name.clone(),
                            target: target.clone(),
                        });
                    }
                    let got = check_expr(expr)?;
                    let expected = table.get(target).map(|(w, _)| *w).expect("connectable");
                    if got != expected {
                        return Err(IrError::ConnectWidth {
                            module: self.name.clone(),
                            target: target.clone(),
                            expected,
                            got,
                        });
                    }
                }
                Stmt::When { cond, .. } => {
                    let w = check_expr(cond)?;
                    if w != 1 {
                        return Err(IrError::Expr {
                            module: self.name.clone(),
                            source: ExprError::WidthMismatch {
                                expr: cond.to_string(),
                                detail: format!("when condition must be 1 bit, got {w}"),
                            },
                        });
                    }
                }
                Stmt::MemRead { addr, .. } => {
                    check_expr(addr)?;
                }
                Stmt::MemWrite { addr, data, en, .. } => {
                    check_expr(addr)?;
                    check_expr(data)?;
                    let w = check_expr(en)?;
                    if w != 1 {
                        return Err(IrError::Expr {
                            module: self.name.clone(),
                            source: ExprError::WidthMismatch {
                                expr: en.to_string(),
                                detail: format!("write enable must be 1 bit, got {w}"),
                            },
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Validates the additional Low-form restrictions: no `when`
    /// statements and exactly one connect per target.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotLowForm`] describing the violation.
    pub fn check_low(&self) -> Result<(), IrError> {
        let mut connected = std::collections::HashSet::new();
        for stmt in &self.stmts {
            match stmt {
                Stmt::When { .. } => {
                    return Err(IrError::NotLowForm {
                        module: self.name.clone(),
                        detail: "contains a when statement".into(),
                    })
                }
                Stmt::Connect { target, .. } if !connected.insert(target.clone()) => {
                    return Err(IrError::NotLowForm {
                        module: self.name.clone(),
                        detail: format!("multiple connects to {target}"),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Depth-first iterator over statements including `when` bodies.
pub fn walk_stmts(stmts: &[Stmt]) -> impl Iterator<Item = &Stmt> {
    let mut out = Vec::new();
    fn rec<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
        for s in stmts {
            out.push(s);
            if let Stmt::When {
                then_body,
                else_body,
                ..
            } = s
            {
                rec(then_body, out);
                rec(else_body, out);
            }
        }
    }
    rec(stmts, &mut out);
    out.into_iter()
}

/// A complete design: a named top module plus all transitively
/// instantiated modules.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Name of the top module.
    pub top: String,
    /// All modules.
    pub modules: Vec<Module>,
}

impl Circuit {
    /// Creates a circuit.
    pub fn new(top: impl Into<String>, modules: Vec<Module>) -> Circuit {
        Circuit {
            top: top.into(),
            modules,
        }
    }

    /// The module named `name`.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Mutable access to the module named `name`.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// The top module.
    ///
    /// # Panics
    ///
    /// Panics if the top module is missing (validate first).
    pub fn top_module(&self) -> &Module {
        self.module(&self.top).expect("top module exists")
    }

    /// Validates the whole circuit (all modules + hierarchy acyclicity).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.module(&self.top).is_none() {
            return Err(IrError::MissingTop(self.top.clone()));
        }
        for m in &self.modules {
            m.validate(self)?;
        }
        // Cycle check over the instantiation graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<String, Mark> = self
            .modules
            .iter()
            .map(|m| (m.name.clone(), Mark::White))
            .collect();
        fn dfs(
            circuit: &Circuit,
            name: &str,
            marks: &mut HashMap<String, Mark>,
        ) -> Result<(), IrError> {
            match marks.get(name) {
                Some(Mark::Black) => return Ok(()),
                Some(Mark::Grey) => return Err(IrError::RecursiveInstantiation(name.to_owned())),
                _ => {}
            }
            marks.insert(name.to_owned(), Mark::Grey);
            if let Some(m) = circuit.module(name) {
                for (_, child) in m.instances() {
                    let child = child.to_owned();
                    dfs(circuit, &child, marks)?;
                }
            }
            marks.insert(name.to_owned(), Mark::Black);
            Ok(())
        }
        dfs(self, &self.top.clone(), &mut marks)?;
        Ok(())
    }

    /// Validates Low-form restrictions for every module.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotLowForm`] for the first offending module.
    pub fn check_low(&self) -> Result<(), IrError> {
        for m in &self.modules {
            m.check_low()?;
        }
        Ok(())
    }

    /// Total statement count across modules (including nested).
    pub fn stmt_count(&self) -> usize {
        self.modules
            .iter()
            .map(|m| walk_stmts(&m.stmts).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;

    fn loc() -> SourceLoc {
        SourceLoc::new("test.rs", 1, 1)
    }

    fn simple_module() -> Module {
        let mut m = Module::new("adder", loc());
        m.ports = vec![
            Port {
                name: "a".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "b".into(),
                dir: PortDir::Input,
                width: 8,
                loc: loc(),
            },
            Port {
                name: "out".into(),
                dir: PortDir::Output,
                width: 8,
                loc: loc(),
            },
        ];
        m.stmts = vec![
            Stmt::Node {
                id: StmtId(1),
                name: "sum".into(),
                expr: Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::var("b")),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(2),
                target: "out".into(),
                expr: Expr::var("sum"),
                loc: loc(),
            },
        ];
        m
    }

    #[test]
    fn validate_ok() {
        let c = Circuit::new("adder", vec![simple_module()]);
        c.validate().unwrap();
        c.check_low().unwrap();
    }

    #[test]
    fn signal_table_contents() {
        let c = Circuit::new("adder", vec![simple_module()]);
        let t = c.top_module().signal_table(&c);
        assert_eq!(t["a"], (8, SignalKind::Input));
        assert_eq!(t["out"], (8, SignalKind::Output));
        assert_eq!(t["sum"], (8, SignalKind::Node));
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut m = simple_module();
        m.stmts.push(Stmt::Wire {
            id: StmtId(3),
            name: "sum".into(),
            width: 8,
            loc: loc(),
        });
        let c = Circuit::new("adder", vec![m]);
        assert!(matches!(
            c.validate().unwrap_err(),
            IrError::DuplicateSignal { .. }
        ));
    }

    #[test]
    fn connect_to_input_rejected() {
        let mut m = simple_module();
        m.stmts.push(Stmt::Connect {
            id: StmtId(3),
            target: "a".into(),
            expr: Expr::lit(0, 8),
            loc: loc(),
        });
        let c = Circuit::new("adder", vec![m]);
        assert!(matches!(
            c.validate().unwrap_err(),
            IrError::BadConnectTarget { .. }
        ));
    }

    #[test]
    fn connect_width_checked() {
        let mut m = simple_module();
        m.stmts.push(Stmt::Connect {
            id: StmtId(3),
            target: "out".into(),
            expr: Expr::lit(0, 4),
            loc: loc(),
        });
        let c = Circuit::new("adder", vec![m]);
        assert!(matches!(
            c.validate().unwrap_err(),
            IrError::ConnectWidth { .. }
        ));
    }

    #[test]
    fn instance_ports_visible_and_checked() {
        let child = simple_module();
        let mut parent = Module::new("top", loc());
        parent.ports = vec![Port {
            name: "x".into(),
            dir: PortDir::Input,
            width: 8,
            loc: loc(),
        }];
        parent.stmts = vec![
            Stmt::Instance {
                id: StmtId(10),
                name: "u0".into(),
                module: "adder".into(),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(11),
                target: "u0.a".into(),
                expr: Expr::var("x"),
                loc: loc(),
            },
            Stmt::Connect {
                id: StmtId(12),
                target: "u0.b".into(),
                expr: Expr::var("u0.out"),
                loc: loc(),
            },
        ];
        let c = Circuit::new("top", vec![parent, child]);
        c.validate().unwrap();
        // Connecting to a child OUTPUT is rejected.
        let mut c2 = c.clone();
        c2.module_mut("top").unwrap().stmts.push(Stmt::Connect {
            id: StmtId(13),
            target: "u0.out".into(),
            expr: Expr::lit(0, 8),
            loc: loc(),
        });
        assert!(matches!(
            c2.validate().unwrap_err(),
            IrError::BadConnectTarget { .. }
        ));
    }

    #[test]
    fn recursive_instantiation_detected() {
        let mut a = Module::new("a", loc());
        a.stmts = vec![Stmt::Instance {
            id: StmtId(1),
            name: "inner".into(),
            module: "b".into(),
            loc: loc(),
        }];
        let mut b = Module::new("b", loc());
        b.stmts = vec![Stmt::Instance {
            id: StmtId(2),
            name: "inner".into(),
            module: "a".into(),
            loc: loc(),
        }];
        let c = Circuit::new("a", vec![a, b]);
        assert!(matches!(
            c.validate().unwrap_err(),
            IrError::RecursiveInstantiation(_)
        ));
    }

    #[test]
    fn low_form_checks() {
        let mut m = simple_module();
        m.stmts.push(Stmt::When {
            id: StmtId(5),
            cond: Expr::lit(1, 1),
            then_body: vec![],
            else_body: vec![],
            loc: loc(),
        });
        assert!(m.check_low().is_err());

        let mut m2 = simple_module();
        m2.stmts.push(Stmt::Connect {
            id: StmtId(6),
            target: "out".into(),
            expr: Expr::var("sum"),
            loc: loc(),
        });
        assert!(m2.check_low().is_err());
    }

    #[test]
    fn missing_top_detected() {
        let c = Circuit::new("nope", vec![simple_module()]);
        assert!(matches!(c.validate().unwrap_err(), IrError::MissingTop(_)));
    }

    #[test]
    fn walk_visits_nested() {
        let m = Module {
            name: "m".into(),
            ports: vec![],
            stmts: vec![Stmt::When {
                id: StmtId(1),
                cond: Expr::lit(1, 1),
                then_body: vec![Stmt::Wire {
                    id: StmtId(2),
                    name: "w".into(),
                    width: 1,
                    loc: loc(),
                }],
                else_body: vec![Stmt::Wire {
                    id: StmtId(3),
                    name: "v".into(),
                    width: 1,
                    loc: loc(),
                }],
                loc: loc(),
            }],
            gen_vars: vec![],
            loc: loc(),
        };
        assert_eq!(walk_stmts(&m.stmts).count(), 3);
    }

    #[test]
    fn mem_shape_lookup() {
        let mut m = Module::new("m", loc());
        m.stmts = vec![Stmt::Mem {
            id: StmtId(1),
            name: "rf".into(),
            width: 32,
            depth: 32,
            loc: loc(),
        }];
        assert_eq!(m.mem_shape("rf"), Some((32, 32)));
        assert_eq!(m.mem_shape("nope"), None);
    }
}
