#![warn(missing_docs)]
//! `hgf-ir`: a FIRRTL-like hardware intermediate representation.
//!
//! This crate is the compiler substrate of the hgdb reproduction. The
//! paper (§4.1) extracts its debugging symbol table from Chisel's
//! FIRRTL IR with a two-pass algorithm; this crate provides the
//! equivalent stack:
//!
//! * [`Circuit`] / [`Module`] / [`Stmt`] / [`Expr`] — a High form with
//!   `when` blocks and procedural connects, and a Low form of
//!   straight-line nodes + muxes (see [`stmt`] for the exact rules).
//! * [`passes`] — when-expansion with the SSA transform of §3.1
//!   (Listings 1→2), constant propagation, CSE, DCE, and the two
//!   symbol-extraction passes of Algorithm 1.
//! * [`verilog`] — Low-form Verilog emission in FIRRTL's obfuscated
//!   `_T`/`_GEN` style (Listing 4).
//!
//! # Examples
//!
//! Build a module, run the pipeline, and collect symbols:
//!
//! ```
//! use hgf_ir::{Circuit, CircuitState, Module, Port, PortDir, SourceLoc, Stmt, StmtId};
//! use hgf_ir::expr::Expr;
//!
//! let loc = SourceLoc::new("gen.rs", 1, 1);
//! let mut m = Module::new("passthrough", loc.clone());
//! m.ports = vec![
//!     Port { name: "x".into(), dir: PortDir::Input, width: 4, loc: loc.clone() },
//!     Port { name: "y".into(), dir: PortDir::Output, width: 4, loc: loc.clone() },
//! ];
//! m.stmts = vec![Stmt::Connect {
//!     id: StmtId(1),
//!     target: "y".into(),
//!     expr: Expr::var("x"),
//!     loc: loc.clone(),
//! }];
//! let mut state = CircuitState::new(Circuit::new("passthrough", vec![m]));
//! let symbols = hgf_ir::passes::compile(&mut state, false)?;
//! assert_eq!(symbols.breakpoints.len(), 1);
//! # Ok::<(), hgf_ir::passes::PassError>(())
//! ```

pub mod annot;
pub mod expr;
pub mod passes;
pub mod source;
pub mod stmt;
pub mod verilog;

pub use annot::{Annotations, CircuitState, DebugAnnotation};
pub use expr::{BinaryOp, Expr, ExprError, UnaryOp};
pub use source::SourceLoc;
pub use stmt::{walk_stmts, Circuit, IrError, Module, Port, PortDir, SignalKind, Stmt, StmtId};
