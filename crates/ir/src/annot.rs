//! Annotations carried alongside the circuit through compiler passes.
//!
//! Mirrors FIRRTL's annotation mechanism as used by the paper
//! (§4.1): pass 1 of Algorithm 1 attaches debug annotations to IR nodes
//! on the High form; optimization passes update or invalidate them; pass
//! 2 collects the survivors into the symbol table. `DontTouch`
//! annotations implement the paper's debug mode (the `-O0` analogue that
//! keeps signals out of optimization and grows the symbol table ~30%).

use std::collections::{HashMap, HashSet};

use crate::expr::Expr;
use crate::source::SourceLoc;
use crate::stmt::{Circuit, StmtId};

/// A breakpoint-bearing statement recorded by the annotation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugAnnotation {
    /// Module containing the statement.
    pub module: String,
    /// Identity of the annotated statement.
    pub stmt: StmtId,
    /// Generator source position (breakpoint location).
    pub loc: SourceLoc,
    /// Enable condition over module-local RTL signals: the
    /// AND-reduction of the surrounding `when` condition stack (§3.1).
    /// `None` means unconditional.
    pub enable: Option<Expr>,
    /// The source-level variable this statement assigns and the RTL
    /// signal holding its value *after* the statement, if any.
    pub assigned: Option<(String, String)>,
    /// Scope mapping live *before* this statement: source variable →
    /// RTL signal (the paper fetches `sum0` for `sum` at Listing 2
    /// line 4).
    pub scope: Vec<(String, String)>,
}

/// Annotation store threaded through the pass manager with the circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Annotations {
    /// Signals protected from optimization: `(module, signal)`.
    dont_touch: HashSet<(String, String)>,
    /// Debug annotations in statement order per module.
    debug: Vec<DebugAnnotation>,
    /// Whether debug mode (the `-O0` analogue) is active.
    debug_mode: bool,
}

impl Annotations {
    /// Creates an empty annotation store.
    pub fn new() -> Annotations {
        Annotations::default()
    }

    /// Enables debug mode: the annotation pass will mark every
    /// annotated signal DontTouch, excluding it from optimization.
    pub fn set_debug_mode(&mut self, on: bool) {
        self.debug_mode = on;
    }

    /// Whether debug mode is active.
    pub fn debug_mode(&self) -> bool {
        self.debug_mode
    }

    /// Protects `signal` in `module` from optimization.
    pub fn add_dont_touch(&mut self, module: impl Into<String>, signal: impl Into<String>) {
        self.dont_touch.insert((module.into(), signal.into()));
    }

    /// Whether `signal` in `module` is protected.
    pub fn is_dont_touch(&self, module: &str, signal: &str) -> bool {
        self.dont_touch
            .contains(&(module.to_owned(), signal.to_owned()))
    }

    /// Number of protected signals (for the symbol-size experiment).
    pub fn dont_touch_count(&self) -> usize {
        self.dont_touch.len()
    }

    /// Appends a debug annotation.
    pub fn add_debug(&mut self, annotation: DebugAnnotation) {
        self.debug.push(annotation);
    }

    /// All debug annotations.
    pub fn debug(&self) -> &[DebugAnnotation] {
        &self.debug
    }

    /// Mutable access for passes that update variable mappings.
    pub fn debug_mut(&mut self) -> &mut Vec<DebugAnnotation> {
        &mut self.debug
    }

    /// Applies signal renames produced by a pass (e.g. CSE merging two
    /// nodes) to all annotations of `module`: enable expressions,
    /// assigned mappings and scopes.
    pub fn apply_renames(&mut self, module: &str, renames: &HashMap<String, String>) {
        if renames.is_empty() {
            return;
        }
        // Renames may chain (a->b recorded, then b->c); resolve
        // transitively with a bounded walk.
        let resolve = |name: &str| -> Option<String> {
            let mut cur = renames.get(name)?;
            for _ in 0..renames.len() {
                match renames.get(cur) {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            Some(cur.clone())
        };
        for ann in self.debug.iter_mut().filter(|a| a.module == module) {
            if let Some(e) = &ann.enable {
                ann.enable = Some(e.rename_refs(&resolve));
            }
            if let Some((_, rtl)) = &mut ann.assigned {
                if let Some(new_name) = resolve(rtl) {
                    *rtl = new_name;
                }
            }
            for (_, rtl) in &mut ann.scope {
                if let Some(new_name) = resolve(rtl) {
                    *rtl = new_name;
                }
            }
        }
        // DontTouch markers follow renames too.
        let moved: Vec<(String, String)> = self
            .dont_touch
            .iter()
            .filter(|(m, s)| m == module && renames.contains_key(s))
            .cloned()
            .collect();
        for (m, s) in moved {
            self.dont_touch.remove(&(m.clone(), s.clone()));
            if let Some(new_name) = resolve(&s) {
                self.dont_touch.insert((m, new_name));
            }
        }
    }
}

/// The unit passes operate on: a circuit plus its annotations, directly
/// mirroring Algorithm 1's `CircuitState` input.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitState {
    /// The design.
    pub circuit: Circuit,
    /// Annotations (DontTouch, debug info).
    pub annotations: Annotations,
}

impl CircuitState {
    /// Wraps a circuit with empty annotations.
    pub fn new(circuit: Circuit) -> CircuitState {
        CircuitState {
            circuit,
            annotations: Annotations::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn ann(module: &str, rtl: &str) -> DebugAnnotation {
        DebugAnnotation {
            module: module.into(),
            stmt: StmtId(1),
            loc: SourceLoc::new("f.rs", 4, 1),
            enable: Some(Expr::var("cond_0")),
            assigned: Some(("sum".into(), rtl.into())),
            scope: vec![("sum".into(), rtl.into())],
        }
    }

    #[test]
    fn dont_touch_membership() {
        let mut a = Annotations::new();
        a.add_dont_touch("m", "sig");
        assert!(a.is_dont_touch("m", "sig"));
        assert!(!a.is_dont_touch("m", "other"));
        assert!(!a.is_dont_touch("other", "sig"));
        assert_eq!(a.dont_touch_count(), 1);
    }

    #[test]
    fn renames_rewrite_annotations() {
        let mut a = Annotations::new();
        a.add_debug(ann("m", "sum_1"));
        a.add_debug(ann("other", "sum_1"));
        let mut renames = HashMap::new();
        renames.insert("sum_1".to_owned(), "sum_0".to_owned());
        renames.insert("cond_0".to_owned(), "c".to_owned());
        a.apply_renames("m", &renames);
        let first = &a.debug()[0];
        assert_eq!(first.assigned.as_ref().unwrap().1, "sum_0");
        assert_eq!(first.scope[0].1, "sum_0");
        assert_eq!(first.enable.as_ref().unwrap().to_string(), "c");
        // Other module untouched.
        assert_eq!(a.debug()[1].assigned.as_ref().unwrap().1, "sum_1");
    }

    #[test]
    fn renames_resolve_chains() {
        let mut a = Annotations::new();
        a.add_debug(ann("m", "x"));
        let mut renames = HashMap::new();
        renames.insert("x".to_owned(), "y".to_owned());
        renames.insert("y".to_owned(), "z".to_owned());
        a.apply_renames("m", &renames);
        assert_eq!(a.debug()[0].assigned.as_ref().unwrap().1, "z");
    }

    #[test]
    fn dont_touch_follows_renames() {
        let mut a = Annotations::new();
        a.add_dont_touch("m", "x");
        let mut renames = HashMap::new();
        renames.insert("x".to_owned(), "y".to_owned());
        a.apply_renames("m", &renames);
        assert!(a.is_dont_touch("m", "y"));
        assert!(!a.is_dont_touch("m", "x"));
    }
}
