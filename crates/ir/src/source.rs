//! Source locators.
//!
//! Hardware generator frameworks record the *generator* source position
//! of every emitted statement (Chisel stores Scala file/line in FIRRTL;
//! our `hgf` frontend captures Rust locations via `#[track_caller]`).
//! These locators are what breakpoints are set against.

use std::fmt;
use std::sync::Arc;

/// A position in generator source code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceLoc {
    /// Source file path as recorded by the generator.
    pub file: Arc<str>,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl SourceLoc {
    /// Creates a locator.
    pub fn new(file: impl Into<Arc<str>>, line: u32, col: u32) -> SourceLoc {
        SourceLoc {
            file: file.into(),
            line,
            col,
        }
    }

    /// A placeholder for synthesized statements with no source position.
    pub fn unknown() -> SourceLoc {
        SourceLoc::new("<unknown>", 0, 0)
    }

    /// Whether this is the placeholder locator.
    pub fn is_unknown(&self) -> bool {
        self.line == 0 && &*self.file == "<unknown>"
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        let a = SourceLoc::new("alu.rs", 3, 1);
        let b = SourceLoc::new("alu.rs", 3, 9);
        assert_eq!(a.to_string(), "alu.rs:3:1");
        assert!(a < b);
    }

    #[test]
    fn unknown_marker() {
        assert!(SourceLoc::unknown().is_unknown());
        assert!(!SourceLoc::new("x.rs", 1, 1).is_unknown());
    }
}
