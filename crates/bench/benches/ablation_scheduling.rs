//! Ablation: precomputed breakpoint ordering vs re-deriving per cycle
//! (§3.2 — "Before the simulation starts, we compute the absolute
//! ordering of every potential breakpoint").

use bench::{compile_dual, symbols_for};
use criterion::{criterion_group, criterion_main, Criterion};
use hgdb::Scheduler;

fn scheduling(c: &mut Criterion) {
    let core = compile_dual(true);
    let st = symbols_for(&core);
    let n = st.all_breakpoints().expect("query").len();
    assert!(n > 20, "need a meaningful breakpoint population, got {n}");

    let mut group = c.benchmark_group("ablation_scheduling");

    // hgdb's way: order once, then per-cycle iteration is just a
    // cursor walk.
    let mut precomputed = Scheduler::from_symbols(&st).expect("scheduler");
    group.bench_function("precomputed_walk_per_cycle", |b| {
        b.iter(|| {
            precomputed.reset_cycle();
            let mut visited = 0usize;
            for gi in precomputed.remaining_forward() {
                visited += precomputed.groups()[gi].bp_ids.len();
            }
            visited
        })
    });

    // The naive alternative: rebuild (re-sort) the ordering every
    // cycle from the symbol table.
    group.bench_function("rebuild_ordering_per_cycle", |b| {
        b.iter(|| {
            let sched = Scheduler::from_symbols(&st).expect("scheduler");
            let mut visited = 0usize;
            for gi in sched.remaining_forward() {
                visited += sched.groups()[gi].bp_ids.len();
            }
            visited
        })
    });

    // The fast path the paper highlights: nothing inserted, exit
    // immediately.
    group.bench_function("empty_fast_path", |b| {
        let empty = Scheduler::from_symbols(&symtab::SymbolTable::new()).expect("scheduler");
        b.iter(|| empty.is_empty())
    });

    group.finish();
}

criterion_group!(benches, scheduling);
criterion_main!(benches);
