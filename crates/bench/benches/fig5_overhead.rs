//! Figure 5: simulation time for the benchmark suite under the four
//! configurations (baseline, baseline+hgdb, debug, debug+hgdb).
//!
//! The paper's claim: "at no point does hgdb overhead exceed 5% of
//! runtime", in either build mode. Criterion times a bounded number of
//! cycles per workload (per-cycle cost is what the callback overhead
//! perturbs); the companion `fig5_table` binary runs workloads to
//! completion and prints the normalized table for EXPERIMENTS.md.

use bench::{
    attach_runtime, compile_core, compile_dual, loaded_sim, run_attached, run_plain, symbols_for,
    FigConfig,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Cycles timed per iteration — enough to amortize setup noise while
/// keeping the full sweep fast.
const CYCLES: u64 = 1500;

// The setup closure's `Result` is an either-type (plain sim vs. sim
// with the runtime attached), not error plumbing, so the large `Err`
// variant is intentional.
#[allow(clippy::result_large_err)]
fn fig5(c: &mut Criterion) {
    // Compile each design variant once; they are workload-independent.
    let single_rel = compile_core(false);
    let single_dbg = compile_core(true);
    let dual_rel = compile_dual(false);
    let dual_dbg = compile_dual(true);
    let sym_single_rel = symbols_for(&single_rel);
    let sym_single_dbg = symbols_for(&single_dbg);
    let sym_dual_rel = symbols_for(&dual_rel);
    let sym_dual_dbg = symbols_for(&dual_dbg);

    for workload in rv32::suite() {
        let mut group = c.benchmark_group(format!("fig5/{}", workload.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for config in FigConfig::all() {
            let core = match (workload.dual_core, config.debug_build()) {
                (false, false) => &single_rel,
                (false, true) => &single_dbg,
                (true, false) => &dual_rel,
                (true, true) => &dual_dbg,
            };
            let symbols = match (workload.dual_core, config.debug_build()) {
                (false, false) => &sym_single_rel,
                (false, true) => &sym_single_dbg,
                (true, false) => &sym_dual_rel,
                (true, true) => &sym_dual_dbg,
            };
            let workload = workload.clone();
            group.bench_function(config.label(), |b| {
                b.iter_batched(
                    || {
                        let sim = loaded_sim(core, &workload);
                        if config.hgdb_attached() {
                            // Attach outside the timed region: Figure 5
                            // measures steady-state overhead.
                            Err(attach_runtime(sim, symbols.clone()))
                        } else {
                            Ok(sim)
                        }
                    },
                    |setup| match setup {
                        Err(mut runtime) => run_attached(&mut runtime, &core.top, CYCLES),
                        Ok(mut sim) => run_plain(&mut sim, &core.top, CYCLES),
                    },
                    BatchSize::PerIteration,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig5);
criterion_main!(benches);
