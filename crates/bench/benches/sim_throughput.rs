//! Raw simulation throughput (cycles/second), the number every other
//! measurement in this repo sits on top of: breakpoint emulation via
//! clock-edge callbacks (§3) is only viable when the per-cycle
//! simulation cost is near-zero, so the combinational sweep itself must
//! be fast.
//!
//! Two designs bracket the value-representation regimes:
//!
//! * `rv32_core` — the RocketChip stand-in; nearly all signals are
//!   ≤64 bits (the inline `Bits` representation, zero-allocation path);
//! * `wide_datapath` — 192-bit pipeline registers (multi-word heap
//!   `Bits`), stressing word-level slice/concat/xor.
//!
//! Baselines live in `BENCH_sim_throughput.json` at the repo root; the
//! `sim_throughput` binary reproduces them (it prints the JSON).

use bench::{compile_core, loaded_sim, loaded_wide_sim, measure_throughput};
use bits::Bits;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtl_sim::SimControl;

const CYCLES: u64 = 2000;

fn sim_throughput(c: &mut Criterion) {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("rv32_core", |b| {
        b.iter_batched(
            || loaded_sim(&core, &workload),
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("wide_datapath", |b| {
        b.iter_batched(
            || loaded_wide_sim(8),
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    // Interactive poke+peek latency on a data input with a real
    // combinational fan-out cone (the wide design's `x` feeds every
    // stage's rotate/mix): with the incremental dirty set each poke
    // re-evaluates only that cone, so this stays flat as designs grow.
    group.bench_function("poke_peek_latency", |b| {
        b.iter_batched(
            || loaded_wide_sim(8),
            |mut sim| {
                let x = sim.signal_id("wide.x").expect("x input");
                let y = sim.signal_id("wide.y").expect("y output");
                for i in 0..CYCLES {
                    sim.poke_id(x, Bits::from_u64(i, 192)).unwrap();
                    let _ = sim.peek_id(y);
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();

    // Print absolute cycles/sec alongside criterion's relative timings
    // so CI logs double as a coarse throughput record.
    let mut sim = loaded_sim(&core, &workload);
    let cps = measure_throughput(&mut sim, 20_000);
    println!("rv32_core absolute throughput: {cps:.0} cycles/sec");
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
