//! Symbol-table query micro-benchmarks (§3.4).
//!
//! The paper notes "the symbol table performance is less important
//! compared to the simulator interface" because queries happen while
//! the simulator is paused — these benchmarks quantify that the
//! relational primitives are nonetheless fast (indexed lookups).

use bench::{compile_core, symbols_for};
use criterion::{criterion_group, criterion_main, Criterion};
use hgdb::DebugExpr;

fn queries(c: &mut Criterion) {
    let core = compile_core(true);
    let st = symbols_for(&core);
    let all = st.all_breakpoints().expect("query");
    assert!(!all.is_empty());
    let first = all[0].clone();
    let some_bp = all[all.len() / 2].clone();

    let mut group = c.benchmark_group("symtab");
    group.bench_function("breakpoints_at(file,line)", |b| {
        b.iter(|| {
            st.breakpoints_at(&first.filename, Some(first.line), None)
                .expect("query")
        })
    });
    group.bench_function("scope_of", |b| {
        b.iter(|| st.scope_of(some_bp.id).expect("query"))
    });
    group.bench_function("resolve_instance_variable", |b| {
        b.iter(|| {
            st.resolve_instance_variable(some_bp.instance_id, "alu_out")
                .expect("query")
        })
    });
    group.bench_function("all_breakpoints_ordered", |b| {
        b.iter(|| st.all_breakpoints().expect("query").len())
    });
    group.finish();

    // Enable-condition evaluation (the per-breakpoint work inside the
    // Figure 2 loop).
    let mut group = c.benchmark_group("expr");
    let parsed = DebugExpr::parse("((a % 8'h2) == 8'h1) & (_cond_0 & ~(flag))").expect("parses");
    let resolve = |name: &str| {
        Some(match name {
            "a" => bits::Bits::from_u64(5, 8),
            "_cond_0" => bits::Bits::from_bool(true),
            "flag" => bits::Bits::from_bool(false),
            _ => return None,
        })
    };
    group.bench_function("parse_enable", |b| {
        b.iter(|| DebugExpr::parse("((a % 8'h2) == 8'h1) & (_cond_0 & ~(flag))").expect("parses"))
    });
    group.bench_function("eval_enable", |b| {
        b.iter(|| parsed.eval(&resolve).expect("evals"))
    });
    group.finish();
}

criterion_group!(benches, queries);
criterion_main!(benches);
