//! Ablation: why breakpoint emulation hooks the *clock edge* instead
//! of tracing signal values (§3 design choice).
//!
//! Compares per-cycle cost of: no instrumentation, an empty clock-edge
//! callback (hgdb's mechanism), a callback that samples one signal,
//! and full per-cycle value sampling (what a value-change-callback /
//! tracing approach would pay).

use bench::{compile_core, loaded_sim};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtl_sim::SimControl;

const CYCLES: u64 = 1000;

fn callback_ablation(c: &mut Criterion) {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();

    let mut group = c.benchmark_group("ablation_callback");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("no_instrumentation", |b| {
        b.iter_batched(
            || loaded_sim(&core, &workload),
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("empty_clock_callback", |b| {
        b.iter_batched(
            || {
                let mut sim = loaded_sim(&core, &workload);
                sim.add_clock_callback(Box::new(|_| {}));
                sim
            },
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("callback_sampling_one_signal", |b| {
        b.iter_batched(
            || {
                let mut sim = loaded_sim(&core, &workload);
                sim.add_clock_callback(Box::new(|view| {
                    let _ = view.get_value("cpu.pc");
                }));
                sim
            },
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    // Same sampling through the interned-id fast path: what per-cycle
    // instrumentation should cost when it skips the string lookup.
    group.bench_function("callback_sampling_one_signal_by_id", |b| {
        b.iter_batched(
            || {
                let mut sim = loaded_sim(&core, &workload);
                let pc = sim.signal_id("cpu.pc").expect("pc signal");
                sim.add_clock_callback(Box::new(move |view| {
                    let _ = view.get_value_id(pc);
                }));
                sim
            },
            |mut sim| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("full_trace_sampling", |b| {
        b.iter_batched(
            || {
                let sim = loaded_sim(&core, &workload);
                let rec = vcd::Recorder::new(&sim, std::io::sink()).expect("recorder");
                (sim, rec)
            },
            |(mut sim, mut rec)| {
                for _ in 0..CYCLES {
                    sim.step_clock();
                    rec.sample(&sim).expect("sample");
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, callback_ablation);
criterion_main!(benches);
