//! CI lint driver: statically analyzes every shipped example design
//! plus the rv32 core, warnings-as-errors.
//!
//! Each design is elaborated once and compiled twice — debug mode and
//! release mode — because two of the lint codes are mode-dependent by
//! design (see docs/LINT.md): L004 (dead logic) fires only in debug
//! builds, where `DontTouch` keeps otherwise-eliminated logic alive,
//! and L007 (debug-symbol coverage) fires only in release builds,
//! where optimization strands symbol-table variables. The debug pass
//! therefore allows L004 and the release pass allows L007; everything
//! else runs at default severity, and any surviving diagnostic —
//! warn or deny — fails the run.

use hgdb_lint::{Code, LintConfig, Registry};
use hgf::CircuitBuilder;
use hgf_ir::CircuitState;

/// One design under lint: a label and an elaboration function that
/// populates the builder and returns the top module name.
struct Design {
    label: &'static str,
    build: fn(&mut CircuitBuilder) -> &'static str,
}

/// The quickstart accumulator (examples/quickstart.rs).
fn build_acc(cb: &mut CircuitBuilder) -> &'static str {
    cb.module("acc", |m| {
        let data = [m.input("data0", 8), m.input("data1", 8)];
        let out = m.output("out", 8);
        let sum = m.wire("sum", m.lit(0, 8));
        for d in data {
            let odd = d.rem(&m.lit(2, 8)).eq(&m.lit(1, 8));
            m.when(odd, |m| {
                m.assign(&sum, sum.sig() + d.clone());
            });
        }
        m.assign(&out, sum.sig());
    });
    "acc"
}

/// The saturating counter (examples/gdb_cli.rs, also tests/chaos.rs).
fn build_counter(cb: &mut CircuitBuilder) -> &'static str {
    cb.module("top", |m| {
        let out = m.output("out", 8);
        let count = m.reg("count", 8, Some(0));
        m.when(count.sig().lt(&m.lit(200, 8)), |m| {
            m.assign(&count, count.sig() + m.lit(1, 8));
        });
        m.assign(&out, count.sig());
    });
    "top"
}

/// The bouncing counter (examples/reverse_debug.rs).
fn build_bouncer(cb: &mut CircuitBuilder) -> &'static str {
    cb.module("bouncer", |m| {
        let out = m.output("out", 8);
        let count = m.reg("count", 8, Some(0));
        let down = m.reg("down", 1, Some(0));
        m.when_else(
            down.sig(),
            |m| {
                m.assign(&count, count.sig() - m.lit(1, 8));
                m.when(count.sig().eq(&m.lit(1, 8)), |m| {
                    m.assign(&down, m.lit(0, 1));
                });
            },
            |m| {
                m.assign(&count, count.sig() + m.lit(1, 8));
                m.when(count.sig().eq(&m.lit(4, 8)), |m| {
                    m.assign(&down, m.lit(1, 1));
                });
            },
        );
        m.assign(&out, count.sig());
    });
    "bouncer"
}

fn is_nan(m: &hgf::ModuleBuilder<'_>, x: &hgf::Signal) -> hgf::Signal {
    x.slice(30, 23).eq(&m.lit(0xFF, 8)) & x.slice(22, 0).ne(&m.lit(0, 23))
}

fn is_snan(m: &hgf::ModuleBuilder<'_>, x: &hgf::Signal) -> hgf::Signal {
    is_nan(m, x) & !x.bit(22)
}

/// The two-module FPU comparator (examples/fpu_bug.rs): dcmp leaf
/// instantiated under an fpu wrapper, exercising cross-instance
/// connectivity in the checks.
fn build_fpu(cb: &mut CircuitBuilder) -> &'static str {
    let dcmp = cb.module("dcmp", |m| {
        let a = m.input("io.a", 32);
        let b = m.input("io.b", 32);
        let signaling = m.input("io.signaling", 1);
        let lt = m.output("io.lt", 1);
        let eq = m.output("io.eq", 1);
        let exc = m.output("io.exceptionFlags", 5);

        let any_nan = m.node("any_nan", is_nan(m, &a) | is_nan(m, &b));
        let any_snan = m.node("any_snan", is_snan(m, &a) | is_snan(m, &b));
        let invalid = m.node("invalid", &any_snan | &(&signaling & &any_nan));
        m.assign(&exc, invalid.cat(&m.lit(0, 4)));

        let both_ok = !any_nan;
        let a_lt_b = a.slice(30, 0).lt(&b.slice(30, 0));
        let sign_a = a.bit(31);
        let sign_b = b.bit(31);
        let lt_val = sign_a.gt(&sign_b) | (sign_a.eq(&sign_b) & a_lt_b);
        m.assign(&lt, &both_ok & &lt_val);
        m.assign(&eq, &both_ok & &a.eq(&b).zext(1).trunc(1));
    });
    cb.module("fpu", |m| {
        let in1 = m.input("in.in1", 32);
        let in2 = m.input("in.in2", 32);
        let wflags = m.input("in.wflags", 1);
        let rm = m.input("in.rm", 3);
        let toint = m.output("toint", 32);
        let exc = m.output("io.out.bits.exc", 5);

        let dcmp_inst = m.instance("dcmp", &dcmp);
        m.assign(&dcmp_inst.input("io.a"), in1.clone());
        m.assign(&dcmp_inst.input("io.b"), in2.clone());
        m.assign(&dcmp_inst.input("io.signaling"), m.lit(1, 1));

        let toint_w = m.wire("toint_w", in1.clone());
        let exc_w = m.wire("exc_w", m.lit(0, 5));
        m.when(wflags.clone(), |m| {
            let cmp = dcmp_inst.port("io.lt").cat(&dcmp_inst.port("io.eq"));
            let masked = (!&rm.slice(1, 0)) & cmp;
            m.assign(&toint_w, masked.reduce_or().zext(32));
            m.assign(&exc_w, dcmp_inst.port("io.exceptionFlags"));
        });
        m.assign(&toint, toint_w.sig());
        m.assign(&exc, exc_w.sig());
    });
    "fpu"
}

/// The rv32 core (examples/riscv_debug.rs and the paper's Figure 5
/// target) at the benchmark memory configuration.
fn build_cpu(cb: &mut CircuitBuilder) -> &'static str {
    let cfg = rv32::CoreConfig {
        imem_words: 4096,
        dmem_words: 4096,
    };
    rv32::build_core(cb, "cpu", cfg);
    "cpu"
}

/// Lints one design in one compile mode. Returns the number of
/// surviving diagnostics (0 = clean).
fn lint_one(design: &Design, debug_mode: bool) -> usize {
    let mut cb = CircuitBuilder::new();
    let top = (design.build)(&mut cb);
    let circuit = cb.finish(top).expect("design elaborates");
    let mut state = CircuitState::new(circuit);
    let table = hgf_ir::passes::compile(&mut state, debug_mode).expect("design compiles");

    let mode_dependent = if debug_mode { Code::L004 } else { Code::L007 };
    let config = LintConfig::new().allow(mode_dependent);
    let report = Registry::standard().run(&state, &table, &config);

    let mode = if debug_mode { "debug" } else { "release" };
    if report.is_clean() {
        println!("lint {:>8} [{mode:>7}]: clean", design.label);
    } else {
        println!(
            "lint {:>8} [{mode:>7}]: {} diagnostic(s)",
            design.label,
            report.diagnostics.len()
        );
        print!("{report}");
    }
    report.diagnostics.len()
}

fn main() {
    let designs = [
        Design {
            label: "acc",
            build: build_acc,
        },
        Design {
            label: "counter",
            build: build_counter,
        },
        Design {
            label: "bouncer",
            build: build_bouncer,
        },
        Design {
            label: "fpu",
            build: build_fpu,
        },
        Design {
            label: "rv32",
            build: build_cpu,
        },
    ];

    let mut total = 0;
    for design in &designs {
        total += lint_one(design, true);
        total += lint_one(design, false);
    }
    if total > 0 {
        eprintln!("lint_designs: {total} diagnostic(s) across shipped designs");
        std::process::exit(1);
    }
    println!("lint_designs: all designs clean in both compile modes");
}
