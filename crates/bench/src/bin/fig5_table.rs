//! Prints the Figure 5 table: wall-clock simulation time for every
//! workload under the four configurations, normalized to baseline,
//! with the hgdb overhead percentages the paper bounds at 5%.
//!
//! Run with `cargo run --release -p bench --bin fig5_table`.

use std::time::Instant;

use bench::{
    attach_runtime, compile_core, compile_dual, loaded_sim, run_attached, run_plain, symbols_for,
};

const MAX_CYCLES: u64 = 2_000_000;

fn main() {
    println!("Figure 5 reproduction: simulation time normalized to baseline");
    println!("(lower is better; paper claim: hgdb columns within 5% of their base)\n");
    println!(
        "{:<12} {:>10} {:>16} {:>10} {:>14} {:>9} {:>9}",
        "workload", "baseline", "baseline+hgdb", "debug", "debug+hgdb", "ovh-base", "ovh-debug"
    );

    let single_rel = compile_core(false);
    let single_dbg = compile_core(true);
    let dual_rel = compile_dual(false);
    let dual_dbg = compile_dual(true);
    let syms = [
        symbols_for(&single_rel),
        symbols_for(&single_dbg),
        symbols_for(&dual_rel),
        symbols_for(&dual_dbg),
    ];

    let mut worst_base = 0.0f64;
    let mut worst_debug = 0.0f64;

    for workload in rv32::suite() {
        // Paired back-to-back runs cancel the slow frequency/load
        // drift this kind of host shows; the reported number is the
        // median of per-pair time ratios.
        const PAIRS: usize = 15;
        let design = |dbg: bool| match (workload.dual_core, dbg) {
            (false, false) => (&single_rel, &syms[0]),
            (false, true) => (&single_dbg, &syms[1]),
            (true, false) => (&dual_rel, &syms[2]),
            (true, true) => (&dual_dbg, &syms[3]),
        };
        let time_plain = |dbg: bool| {
            let (core, _) = design(dbg);
            let mut sim = loaded_sim(core, &workload);
            let start = Instant::now();
            let c = run_plain(&mut sim, &core.top, MAX_CYCLES);
            assert!(c < MAX_CYCLES, "{} did not halt", workload.name);
            start.elapsed().as_secs_f64() / c as f64
        };
        let time_hgdb = |dbg: bool| {
            let (core, sym) = design(dbg);
            let sim = loaded_sim(core, &workload);
            // Attach (scheduler precompute + enable parsing) is a
            // one-time cost; Figure 5 measures steady-state simulation.
            let mut runtime = attach_runtime(sim, sym.clone());
            let start = Instant::now();
            let c = run_attached(&mut runtime, &core.top, MAX_CYCLES);
            assert!(c < MAX_CYCLES, "{} did not halt", workload.name);
            start.elapsed().as_secs_f64() / c as f64
        };
        let median = |mut v: Vec<f64>| -> f64 {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        // Warm-up.
        let _ = (
            time_plain(false),
            time_hgdb(false),
            time_plain(true),
            time_hgdb(true),
        );
        let mut r_base_hgdb = Vec::new();
        let mut r_debug = Vec::new();
        let mut r_debug_hgdb = Vec::new();
        for _ in 0..PAIRS {
            let a = time_plain(false);
            let b = time_hgdb(false);
            r_base_hgdb.push(b / a);
            let a2 = time_plain(false);
            let d = time_plain(true);
            r_debug.push(d / a2);
            let d2 = time_plain(true);
            let dh = time_hgdb(true);
            r_debug_hgdb.push(dh / d2);
        }
        let base_hgdb = median(r_base_hgdb);
        let debug = median(r_debug);
        let debug_hgdb = debug * median(r_debug_hgdb);
        let ovh_base = (base_hgdb - 1.0) * 100.0;
        let ovh_debug = (debug_hgdb / debug - 1.0) * 100.0;
        worst_base = worst_base.max(ovh_base);
        worst_debug = worst_debug.max(ovh_debug);
        println!(
            "{:<12} {:>10.3} {:>16.3} {:>10.3} {:>14.3} {:>8.1}% {:>8.1}%",
            workload.name, 1.0, base_hgdb, debug, debug_hgdb, ovh_base, ovh_debug
        );
    }

    println!(
        "\nworst-case hgdb overhead: baseline {worst_base:.1}%, debug {worst_debug:.1}% \
         (paper: < 5%)"
    );
}
