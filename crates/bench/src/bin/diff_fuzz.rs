//! Differential fuzzing soak driver.
//!
//! Runs randomly generated RV32 programs through the hardware core and
//! the golden ISS in lockstep ([`rv32::fuzz`]), alternating two-state
//! and four-state engines. Two modes:
//!
//! * `--cases <n>` — deterministic: seeds `base..base+n` (base from
//!   `--seed`, default 0). This is the pinned CI run; a failure here
//!   reproduces exactly on any machine.
//! * `--seconds <t>` — soak: the base seed is derived from the wall
//!   clock and printed up front, then seeds are consumed sequentially
//!   until the time budget runs out. A failing run prints its seed, so
//!   `--cases 1 --seed <s>` replays it.
//!
//! Every mismatch is shrunk to a minimal op sequence before reporting,
//! and the process exits non-zero.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rv32::fuzz::{gen_program, lower, shrink, Harness, Mode, MAX_OPS};

struct Args {
    cases: Option<u64>,
    seconds: Option<u64>,
    seed: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        cases: None,
        seconds: None,
        seed: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} requires an integer"))
        };
        match arg.as_str() {
            "--cases" => parsed.cases = Some(value("--cases")),
            "--seconds" => parsed.seconds = Some(value("--seconds")),
            "--seed" => parsed.seed = Some(value("--seed")),
            other => panic!("unknown flag {other} (expected --cases, --seconds, --seed)"),
        }
    }
    if parsed.cases.is_none() && parsed.seconds.is_none() {
        parsed.cases = Some(256);
    }
    parsed
}

/// Runs one seed in one mode; on mismatch, shrinks and reports.
/// Returns the retired instruction count on agreement.
fn run_seed(harness: &Harness, seed: u64, mode: Mode) -> Result<u64, ()> {
    let ops = gen_program(seed, MAX_OPS);
    match harness.run_lockstep(&ops, mode) {
        Ok(retired) => Ok(retired),
        Err(mismatch) => {
            eprintln!("MISMATCH seed={seed} mode={mode:?}: {mismatch:?}");
            let minimal = shrink(&ops, &mut |candidate| {
                harness.run_lockstep(candidate, mode) == Err(mismatch.clone())
            });
            eprintln!("minimal sequence ({} ops):", minimal.len());
            for op in &minimal {
                eprintln!("  {op:?}");
            }
            eprintln!("lowered words:");
            for word in lower(&minimal) {
                eprintln!("  {word:#010x}");
            }
            eprintln!("replay with: diff_fuzz --cases 1 --seed {seed}");
            Err(())
        }
    }
}

fn main() {
    let args = parse_args();
    let harness = Harness::new();
    let mut programs: u64 = 0;
    let mut instructions: u64 = 0;
    let mut failures: u64 = 0;

    let mut run = |seed: u64| {
        // Two-state every seed; four-state (reset applied first) on
        // every other seed, so both engines soak in one budget.
        let mut modes = vec![Mode::TwoState];
        if seed.is_multiple_of(2) {
            modes.push(Mode::FourState);
        }
        for mode in modes {
            match run_seed(&harness, seed, mode) {
                Ok(retired) => {
                    programs += 1;
                    instructions += retired;
                }
                Err(()) => failures += 1,
            }
        }
    };

    if let Some(cases) = args.cases {
        let base = args.seed.unwrap_or(0);
        println!("diff_fuzz: pinned run, seeds {base}..{}", base + cases);
        for seed in base..base + cases {
            run(seed);
        }
    } else {
        let seconds = args.seconds.expect("parse_args guarantees a mode");
        let base = args.seed.unwrap_or_else(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos() as u64
        });
        println!("diff_fuzz: {seconds}s soak, base seed {base} (replay failures with --seed)");
        let deadline = Instant::now() + Duration::from_secs(seconds);
        let mut offset = 0u64;
        while Instant::now() < deadline {
            run(base.wrapping_add(offset));
            offset += 1;
        }
    }

    println!(
        "diff_fuzz: {programs} lockstep runs, {instructions} instructions retired, \
         {failures} mismatches"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
