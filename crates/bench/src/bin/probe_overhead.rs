//! Diagnostic: per-cycle cost of plain stepping vs runtime-driven
//! stepping (not part of the experiment suite).
use bench::{compile_core, loaded_sim, symbols_for};
use rtl_sim::SimControl;
use std::time::Instant;

fn main() {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    const N: u64 = 20_000;

    for _ in 0..2 {
        let mut sim = loaded_sim(&core, &workload);
        let t = Instant::now();
        for _ in 0..N {
            sim.step_clock();
        }
        let plain = t.elapsed().as_secs_f64() / N as f64;

        let sim = loaded_sim(&core, &workload);
        let mut rt = hgdb::Runtime::attach(sim, symbols_for(&core)).unwrap();
        let t = Instant::now();
        for _ in 0..N {
            let _ = rt.continue_run(Some(1)).unwrap();
        }
        let hg = t.elapsed().as_secs_f64() / N as f64;

        let sim = loaded_sim(&core, &workload);
        let mut rt2 = hgdb::Runtime::attach(sim, symbols_for(&core)).unwrap();
        let t = Instant::now();
        let _ = rt2.continue_run(Some(N)).unwrap();
        let hg_bulk = t.elapsed().as_secs_f64() / N as f64;

        println!("plain {:.0} ns/cycle | hgdb-per1 {:.0} ns/cycle ({:+.1}%) | hgdb-bulk {:.0} ns/cycle ({:+.1}%)",
            plain*1e9, hg*1e9, (hg/plain-1.0)*100.0, hg_bulk*1e9, (hg_bulk/plain-1.0)*100.0);
    }
}
