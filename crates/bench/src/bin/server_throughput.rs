//! Debug-service request throughput in requests/second, as JSON.
//!
//! Measures the concurrent multi-session service end to end: N TCP
//! clients hammer one `DebugService` (one `Runtime` on its service
//! thread) with eval/time/list requests, plus a single-client batched
//! mode showing what `Request::Batch` saves in round-trips, plus a
//! subscriptions scenario (16 clients, 1 subscribed) measuring what
//! per-session event filtering saves in stop-broadcast fan-out.
//! Produces the numbers recorded in `BENCH_server_throughput.json` at
//! the repo root. Run with `--smoke` for the CI gate: short 1-client,
//! 16-client, and subscription runs that fail (panic) on wrong
//! replies or pathological slowness, without asserting exact timing.
//! `--interrupt` runs only the interrupt-latency scenario (how fast a
//! `Request::Interrupt` stops a breakpoint-free continue) and gates
//! its mean latency at 50ms.
//!
//! ```text
//! cargo run --release -p bench --bin server_throughput                # full JSON
//! cargo run --release -p bench --bin server_throughput -- --smoke     # CI gate
//! cargo run --release -p bench --bin server_throughput -- --interrupt # latency gate
//! ```

use std::net::TcpListener;
use std::time::{Duration, Instant};

use hgdb::protocol::Request;
use hgdb::{outbound_queue, DebugClient, DebugService, Runtime, TcpDebugServer};
use rtl_sim::Simulator;

fn build_runtime() -> Runtime<Simulator> {
    let mut cb = hgf::CircuitBuilder::new();
    cb.module("top", |m| {
        let out = m.output("out", 8);
        let count = m.reg("count", 8, Some(0));
        m.when(count.sig().lt(&m.lit(200, 8)), |m| {
            m.assign(&count, count.sig() + m.lit(1, 8));
        });
        m.assign(&out, count.sig());
    });
    let circuit = cb.finish("top").expect("valid circuit");
    let mut state = hgf_ir::CircuitState::new(circuit);
    let table = hgf_ir::passes::compile(&mut state, true).expect("compiles");
    let symbols = symtab::from_debug_table(&state.circuit, &table).expect("symbols");
    let sim = Simulator::new(&state.circuit).expect("builds");
    Runtime::attach(sim, symbols).expect("attaches")
}

/// A free-running (wrapping) counter whose increment line carries an
/// always-active breakpoint: an unconditioned insertion on it stops
/// the simulation on every cycle, which is exactly what the
/// stop-broadcast scenario needs. Returns the runtime and the
/// breakpoint line.
fn build_wrapping_runtime() -> (Runtime<Simulator>, u32) {
    let mut cb = hgf::CircuitBuilder::new();
    let bp_line = line!() + 4;
    cb.module("top", |m| {
        let out = m.output("out", 8);
        let count = m.reg("count", 8, Some(0));
        m.assign(&count, count.sig() + m.lit(1, 8));
        m.assign(&out, count.sig());
    });
    let circuit = cb.finish("top").expect("valid circuit");
    let mut state = hgf_ir::CircuitState::new(circuit);
    let table = hgf_ir::passes::compile(&mut state, true).expect("compiles");
    let symbols = symtab::from_debug_table(&state.circuit, &table).expect("symbols");
    let sim = Simulator::new(&state.circuit).expect("builds");
    (Runtime::attach(sim, symbols).expect("attaches"), bp_line)
}

struct Row {
    mode: String,
    clients: usize,
    requests: u64,
    requests_per_sec: f64,
    /// Mean request-to-effect latency, for scenarios where latency is
    /// the figure of merit (the interrupt scenario) rather than rate.
    latency_ms: Option<f64>,
}

/// N concurrent TCP clients, each issuing `per_client` request
/// round-trips (alternating eval and time). Every reply is checked.
fn measure_clients(clients: usize, per_client: u64) -> Row {
    let service = DebugService::spawn(build_runtime());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = TcpDebugServer::start(service.handle(), listener).expect("server");
    let addr = server.local_addr().to_string();

    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = hgdb::client::connect_tcp(&addr).expect("connect");
                for i in 0..per_client {
                    if i % 2 == 0 {
                        let v = client.eval(Some("top"), "count").expect("eval reply");
                        assert_eq!(v, "0", "no one advances the clock in this bench");
                    } else {
                        client.time().expect("time reply");
                    }
                }
                client.detach().expect("detach");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();

    server.shutdown();
    let _runtime = service.shutdown();
    let total = per_client * clients as u64;
    Row {
        mode: format!("tcp_{clients}_clients"),
        clients,
        requests: total,
        requests_per_sec: total as f64 / elapsed,
        latency_ms: None,
    }
}

/// One TCP client sending `batches` batch lines of `batch_size` time
/// requests each: per-request cost without the per-request round-trip.
fn measure_batched(batch_size: usize, batches: u64) -> Row {
    let service = DebugService::spawn(build_runtime());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = TcpDebugServer::start(service.handle(), listener).expect("server");
    let mut client = hgdb::client::connect_tcp(&server.local_addr().to_string()).expect("connect");

    let requests = vec![Request::Time; batch_size];
    let start = Instant::now();
    for _ in 0..batches {
        let responses = client.batch(&requests).expect("batch reply");
        assert_eq!(responses.len(), batch_size);
        assert!(responses.iter().all(|r| r["type"].as_str() == Some("time")));
    }
    let elapsed = start.elapsed().as_secs_f64();

    client.detach().expect("detach");
    server.shutdown();
    let _runtime = service.shutdown();
    let total = batches * batch_size as u64;
    Row {
        mode: format!("tcp_batched_x{batch_size}"),
        clients: 1,
        requests: total,
        requests_per_sec: total as f64 / elapsed,
        latency_ms: None,
    }
}

/// The subscriptions scenario: one driver stops the simulation `stops`
/// times while 15 idle viewer connections are attached (16 clients
/// total). With `filtered` set, 14 viewers subscribe to a kind that
/// never fires and exactly one subscribes to breakpoint stops — every
/// stop is delivered to 1 session instead of fanned out to 15. The
/// subscribed viewer actively drains and the delivered + lagged count
/// is checked against `stops`, so filtering is verified, not assumed.
fn measure_subscriptions(stops: u64, filtered: bool) -> Row {
    let (runtime, bp_line) = build_wrapping_runtime();
    let service = DebugService::spawn(runtime);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = TcpDebugServer::start(service.handle(), listener).expect("server");
    let addr = server.local_addr().to_string();

    // 14 passive viewers (default subscription, or a never-matching
    // kind filter when `filtered`).
    let passive: Vec<_> = (0..14)
        .map(|_| {
            let mut viewer = hgdb::client::connect_tcp(&addr).expect("connect");
            if filtered {
                viewer
                    .subscribe(&[], &[], &["watchpoint"])
                    .expect("subscribe");
            }
            viewer
        })
        .collect();

    // The one subscribed viewer drains its events on a thread and
    // reports how many stops it saw (delivered + lagged).
    let mut subscribed = hgdb::client::connect_tcp(&addr).expect("connect");
    if filtered {
        subscribed
            .subscribe(&[], &[], &["breakpoint"])
            .expect("subscribe");
    }
    let drainer = std::thread::spawn(move || {
        let mut seen: u64 = 0;
        while seen < stops {
            let ev = subscribed.wait_event().expect("event stream");
            match ev["event"].as_str() {
                Some("stopped") => seen += 1,
                Some("lagged") => seen += ev["missed"].as_i64().unwrap_or(0) as u64,
                other => panic!("unexpected event {other:?}"),
            }
        }
        seen
    });

    let mut driver = hgdb::client::connect_tcp(&addr).expect("connect");
    driver
        .insert_breakpoint(file!(), bp_line, None)
        .expect("insert");
    let start = Instant::now();
    for _ in 0..stops {
        let stop = driver.continue_run(Some(10)).expect("continue");
        assert_eq!(
            stop["type"].as_str(),
            Some("stopped"),
            "bp hits every cycle"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();

    let seen = drainer.join().expect("drainer thread");
    assert_eq!(seen, stops, "subscribed viewer accounts for every stop");
    driver.detach().expect("detach");
    drop(passive);
    server.shutdown();
    let _runtime = service.shutdown();
    Row {
        mode: if filtered {
            "tcp_16_clients_1_subscribed_stops".into()
        } else {
            "tcp_16_clients_broadcast_all_stops".into()
        },
        clients: 16,
        requests: stops,
        requests_per_sec: stops as f64 / elapsed,
        latency_ms: None,
    }
}

/// The interrupt scenario: a raw in-process session launches a
/// breakpoint-free unbounded `continue`, a second session fires
/// `Request::Interrupt`, and the round measures the latency from the
/// interrupt request to the runner's `interrupted` stop reply. This is
/// the user-facing "Ctrl-C responsiveness" of the service while the
/// simulation is running flat out.
fn measure_interrupt(rounds: u64) -> Row {
    let service = DebugService::spawn(build_runtime());
    let handle = service.handle();
    let mut controller = DebugClient::new(handle.connect().expect("connect"));
    let (out_tx, out_rx) = outbound_queue(64);
    let runner = handle.open_session(out_tx).expect("open session");

    let mut total = Duration::ZERO;
    let start = Instant::now();
    for i in 0..rounds {
        assert!(handle.submit(
            runner,
            Some(i),
            Request::Continue {
                max_cycles: None,
                budget_cycles: None,
                budget_ms: None,
            },
        ));
        // Let the run get deep into a slice first; otherwise the
        // interrupt is drained at cycle 0 and the number measures
        // queue latency, not mid-run responsiveness.
        std::thread::sleep(Duration::from_millis(2));
        let t0 = Instant::now();
        controller.interrupt().expect("interrupt acknowledged");
        let reply = out_rx.recv().expect("stop reply");
        total += t0.elapsed();
        let (line, _, _) = reply.to_line(runner);
        let json = microjson::parse(&line).expect("reply json");
        assert_eq!(
            json["event"]["reason"].as_str(),
            Some("interrupted"),
            "runner stops with the interrupted reason"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();

    handle.close_session(runner);
    drop(controller);
    let _runtime = service.shutdown();
    Row {
        mode: "interrupt_midrun".into(),
        clients: 2,
        requests: rounds,
        requests_per_sec: rounds as f64 / elapsed,
        latency_ms: Some(total.as_secs_f64() * 1000.0 / rounds as f64),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let interrupt_only = std::env::args().any(|a| a == "--interrupt");
    let per_client: u64 = if smoke { 500 } else { 5_000 };

    let rows: Vec<Row> = if interrupt_only {
        // The CI chaos job's latency gate; also part of the full run.
        vec![measure_interrupt(if smoke { 50 } else { 200 })]
    } else if smoke {
        // The CI gate: the two ends of the concurrency range, plus the
        // filtered-broadcast path (which also exercises backpressure).
        vec![
            measure_clients(1, per_client),
            measure_clients(16, per_client),
            measure_subscriptions(per_client, true),
        ]
    } else {
        vec![
            measure_clients(1, per_client),
            measure_clients(4, per_client),
            measure_clients(16, per_client),
            measure_batched(64, per_client / 10),
            measure_subscriptions(per_client, false),
            measure_subscriptions(per_client, true),
            measure_interrupt(200),
        ]
    };

    println!("{{");
    println!("  \"bench\": \"server_throughput\",");
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let latency = r
            .latency_ms
            .map(|ms| format!(", \"interrupt_latency_ms\": {ms:.2}"))
            .unwrap_or_default();
        println!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"requests\": {}, \"requests_per_sec\": {:.0}{}}}{}",
            r.mode, r.clients, r.requests, r.requests_per_sec, latency, comma
        );
    }
    println!("  ]");
    println!("}}");

    if smoke || interrupt_only {
        // Loose floors: loopback TCP against the service thread runs
        // tens of thousands of requests/sec; anything under 1k/sec
        // means the service serialization or the per-client threads
        // regressed to pathological behavior (every reply was already
        // checked for correctness above). An interrupt must land well
        // within a handful of slices (the regression bound is one
        // 5ms slice; 50ms is the gate with scheduling headroom).
        for r in &rows {
            if let Some(ms) = r.latency_ms {
                assert!(
                    ms < 50.0,
                    "{}: interrupt latency {ms:.2}ms above 50ms gate",
                    r.mode
                );
            } else {
                assert!(
                    r.requests_per_sec > 1_000.0,
                    "{}: throughput {:.0} req/sec below smoke floor 1000",
                    r.mode,
                    r.requests_per_sec
                );
            }
        }
        eprintln!("smoke ok");
    }
}
