//! Absolute simulation throughput in cycles/second, as JSON.
//!
//! Produces the numbers recorded in `BENCH_sim_throughput.json` at the
//! repo root. Run with `--smoke` for the CI gate: a short timed run
//! that fails (panics) if the simulator produces wrong results or
//! regresses to pathological slowness, without asserting exact timing.
//!
//! ```text
//! cargo run --release -p bench --bin sim_throughput            # full JSON
//! cargo run --release -p bench --bin sim_throughput -- --smoke # CI gate
//! ```

use bench::{compile_core, loaded_sim, loaded_wide_sim, measure_throughput, run_plain};

struct Row {
    design: &'static str,
    cycles: u64,
    cycles_per_sec: f64,
}

fn measure_rv32(cycles: u64) -> Row {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim(&core, &workload);
    let cps = measure_throughput(&mut sim, cycles);
    Row {
        design: "rv32_core",
        cycles,
        cycles_per_sec: cps,
    }
}

fn measure_wide(cycles: u64) -> Row {
    let mut sim = loaded_wide_sim(8);
    let cps = measure_throughput(&mut sim, cycles);
    Row {
        design: "wide_datapath",
        cycles,
        cycles_per_sec: cps,
    }
}

/// Functional check: the multiply workload must still reach its
/// expected `tohost` under the compiled engine. Guards the CI smoke
/// run against a fast-but-wrong simulator.
fn check_correctness() {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim(&core, &workload);
    let cycles = run_plain(&mut sim, &core.top, 200_000);
    assert!(cycles < 200_000, "multiply workload did not halt");
    let tohost = sim.peek("cpu.tohost").expect("tohost").to_u64() as u32;
    assert_eq!(
        tohost, workload.expected,
        "wrong tohost under throughput run"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cycles: u64 = if smoke { 5_000 } else { 50_000 };

    check_correctness();
    let rows = [measure_rv32(cycles), measure_wide(cycles)];

    println!("{{");
    println!("  \"bench\": \"sim_throughput\",");
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"design\": \"{}\", \"cycles\": {}, \"cycles_per_sec\": {:.0}}}{}",
            r.design, r.cycles, r.cycles_per_sec, comma
        );
    }
    println!("  ]");
    println!("}}");

    if smoke {
        // Thresholds sit well above the pre-PR-2 tree-walking
        // interpreter (183k / 49k cycles/sec, see
        // BENCH_sim_throughput.json) and well below the compiled
        // engine's measured numbers (≈6M / ≈400k), with slack for slow
        // CI runners — a regression to interpreter-class speed fails.
        let floor = [("rv32_core", 500_000.0), ("wide_datapath", 100_000.0)];
        for (r, (design, min)) in rows.iter().zip(floor) {
            assert_eq!(r.design, design);
            assert!(
                r.cycles_per_sec > min,
                "{}: throughput {:.0} cycles/sec below smoke floor {:.0}",
                r.design,
                r.cycles_per_sec,
                min
            );
        }
        eprintln!("smoke ok");
    }
}
