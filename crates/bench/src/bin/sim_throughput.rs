//! Absolute simulation throughput in cycles/second, as JSON.
//!
//! Produces the numbers recorded in `BENCH_sim_throughput.json` at the
//! repo root. Run with `--smoke` for the CI gate: a short timed run
//! that fails (panics) if the simulator produces wrong results or
//! regresses to pathological slowness, without asserting exact timing.
//!
//! ```text
//! cargo run --release -p bench --bin sim_throughput                  # full JSON
//! cargo run --release -p bench --bin sim_throughput -- --smoke       # CI gate
//! cargo run --release -p bench --bin sim_throughput -- --threads 4   # one worker count
//! cargo run --release -p bench --bin sim_throughput -- --verify      # functional digest
//! ```
//!
//! Flags:
//!
//! * `--threads N` — measure under `SimConfig::with_workers(N)` (plus a
//!   sequential baseline row when `N > 1`). Without it, the full run
//!   sweeps workers 1, 2 and 4.
//! * `--cycles N` / `--warmup N` — timed-window and untimed-lead-in
//!   lengths (defaults: 50 000 / 5 000; smoke: 5 000 / 500).
//! * `--checkpoint-every N` — additionally measure rv32 with a
//!   snapshot captured every N cycles (the runtime's auto-checkpoint
//!   cadence) and report the fraction of wall-clock spent inside the
//!   captures. Under `--smoke` that fraction is gated at <10%.
//! * `--verify` — no timing: print a deterministic functional digest
//!   (rv32 halt cycle + `tohost`, wide-datapath state after a fixed
//!   run). CI diffs this output across worker counts to prove the
//!   parallel engine is bit-identical to the sequential one.
//! * `--gate <path>` — regression gate against a recorded baseline
//!   (`BENCH_sim_throughput.json`): measure the sequential two-state
//!   `rv32_core` row and fail if it lands below 95% of the recorded
//!   `current` number. Guards the four-state engine work: the
//!   two-state fast path must stay within 5% of its baseline.

use bench::{
    compile_core, loaded_sim_with, loaded_wide_sim_with, measure_throughput_checkpointed,
    measure_throughput_warmed, run_plain,
};
use rtl_sim::{SimConfig, SimControl};

struct Row {
    design: &'static str,
    workers: usize,
    cycles: u64,
    warmup: u64,
    cycles_per_sec: f64,
    /// Snapshot cadence inside the timed window; 0 = no checkpointing.
    checkpoint_every: u64,
}

/// Engine configuration for `workers`, with the parallel schedules
/// forced on (no sequential small-sweep shortcut) so every worker
/// count exercises its own code path.
fn config_for(workers: usize, force_parallel: bool) -> SimConfig {
    let mut cfg = SimConfig::with_workers(workers);
    if force_parallel {
        cfg.min_parallel_work = 1;
    }
    cfg
}

fn measure_rv32(workers: usize, cycles: u64, warmup: u64) -> Row {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim_with(&core, &workload, config_for(workers, false));
    let cps = measure_throughput_warmed(&mut sim, warmup, cycles);
    Row {
        design: "rv32_core",
        workers,
        cycles,
        warmup,
        cycles_per_sec: cps,
        checkpoint_every: 0,
    }
}

/// Measures rv32 with a snapshot every `every` cycles; the second
/// return value is the fraction of the timed window spent inside the
/// captures (measured directly, so it stays meaningful on hosts whose
/// absolute throughput drifts between runs).
fn measure_rv32_checkpointed(workers: usize, cycles: u64, warmup: u64, every: u64) -> (Row, f64) {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim_with(&core, &workload, config_for(workers, false));
    let (cps, overhead) = measure_throughput_checkpointed(&mut sim, warmup, cycles, every);
    let row = Row {
        design: "rv32_core",
        workers,
        cycles,
        warmup,
        cycles_per_sec: cps,
        checkpoint_every: every,
    };
    (row, overhead)
}

fn measure_wide(workers: usize, cycles: u64, warmup: u64) -> Row {
    let mut sim = loaded_wide_sim_with(8, config_for(workers, false));
    let cps = measure_throughput_warmed(&mut sim, warmup, cycles);
    Row {
        design: "wide_datapath",
        workers,
        cycles,
        warmup,
        cycles_per_sec: cps,
        checkpoint_every: 0,
    }
}

/// Functional check: the multiply workload must still reach its
/// expected `tohost` under the compiled engine. Guards the CI smoke
/// run against a fast-but-wrong simulator.
fn check_correctness(workers: usize) {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim_with(&core, &workload, config_for(workers, true));
    let cycles = run_plain(&mut sim, &core.top, 200_000);
    assert!(cycles < 200_000, "multiply workload did not halt");
    let tohost = sim.peek("cpu.tohost").expect("tohost").to_u64() as u32;
    assert_eq!(
        tohost, workload.expected,
        "wrong tohost under throughput run"
    );
}

fn hex(bits: &bits::Bits) -> String {
    bits.words()
        .iter()
        .rev()
        .map(|w| format!("{w:016x}"))
        .collect()
}

/// Prints a timing-free functional digest. The output contains no
/// worker count and no wall-clock numbers, so two runs under different
/// `--threads` values must produce byte-identical text — that `diff`
/// is the CI determinism gate.
fn print_verify(workers: usize) {
    let core = compile_core(false);
    let workload = rv32::programs::multiply();
    let mut sim = loaded_sim_with(&core, &workload, config_for(workers, true));
    let halt_cycles = run_plain(&mut sim, &core.top, 200_000);
    let tohost = sim.peek("cpu.tohost").expect("tohost").to_u64() as u32;
    println!(
        "rv32_core halt_cycles={halt_cycles} tohost={tohost:#010x} evals={}",
        sim.defs_evaluated()
    );

    let mut wide = loaded_wide_sim_with(8, config_for(workers, true));
    for _ in 0..2_000 {
        wide.step_clock();
    }
    let y = wide.peek("wide.y").expect("y");
    let parity = wide.peek("wide.parity").expect("parity").to_u64();
    println!(
        "wide_datapath cycles=2000 y={} parity={parity} evals={}",
        hex(&y),
        wide.defs_evaluated()
    );
}

/// Gate mode: measure the sequential two-state `rv32_core` row and
/// compare against the recorded baseline in `path`. Fails (panics)
/// below 95% of baseline; the measurement takes the median of three
/// runs to damp runner noise, like the recorded numbers did.
fn run_gate(path: &str, cycles: u64, warmup: u64) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--gate: cannot read {path}: {e}"));
    let json =
        microjson::parse(&text).unwrap_or_else(|e| panic!("--gate: bad JSON in {path}: {e:?}"));
    let baseline = json["current"]["rows"]
        .as_array()
        .unwrap_or_else(|| panic!("--gate: {path} has no current.rows"))
        .iter()
        .find(|r| r["design"].as_str() == Some("rv32_core") && r["workers"].as_i64() == Some(1))
        .and_then(|r| r["cycles_per_sec"].as_f64())
        .unwrap_or_else(|| panic!("--gate: no rv32_core workers=1 baseline in {path}"));

    let mut runs: Vec<f64> = (0..3)
        .map(|_| measure_rv32(1, cycles, warmup).cycles_per_sec)
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    let measured = runs[1];
    let floor = baseline * 0.95;
    println!(
        "{{\"gate\": \"sim_throughput\", \"design\": \"rv32_core\", \"workers\": 1, \
         \"baseline\": {baseline:.0}, \"measured\": {measured:.0}, \"floor\": {floor:.0}}}"
    );
    assert!(
        measured >= floor,
        "two-state rv32_core throughput regressed: {measured:.0} cycles/sec is below \
         95% of the recorded baseline {baseline:.0} (floor {floor:.0})"
    );
    eprintln!("gate ok: {measured:.0} >= {floor:.0} cycles/sec");
}

type Args = (
    bool,
    bool,
    Option<usize>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<String>,
);

fn parse_args() -> Args {
    let mut smoke = false;
    let mut verify = false;
    let mut threads = None;
    let mut cycles = None;
    let mut warmup = None;
    let mut checkpoint_every = None;
    let mut gate = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut text = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        let mut value = |name: &str| {
            text(name)
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} requires an integer"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--verify" => verify = true,
            "--threads" => threads = Some(value("--threads") as usize),
            "--cycles" => cycles = Some(value("--cycles")),
            "--warmup" => warmup = Some(value("--warmup")),
            "--checkpoint-every" => {
                let every = value("--checkpoint-every");
                assert!(every > 0, "--checkpoint-every requires a positive interval");
                checkpoint_every = Some(every);
            }
            "--gate" => gate = Some(text("--gate")),
            other => panic!("unknown flag {other}"),
        }
    }
    (
        smoke,
        verify,
        threads,
        cycles,
        warmup,
        checkpoint_every,
        gate,
    )
}

fn main() {
    let (smoke, verify, threads, cycles_arg, warmup_arg, checkpoint_every, gate) = parse_args();

    if verify {
        print_verify(threads.unwrap_or(1));
        return;
    }
    if let Some(path) = gate {
        // Longer than the sweep default: the gate is a pass/fail
        // boundary, so it needs the noise floor well under 5%.
        run_gate(
            &path,
            cycles_arg.unwrap_or(200_000),
            warmup_arg.unwrap_or(20_000),
        );
        return;
    }

    let cycles = cycles_arg.unwrap_or(if smoke { 5_000 } else { 50_000 });
    let warmup = warmup_arg.unwrap_or(cycles / 10);

    // Worker counts to sweep: an explicit `--threads N` measures N
    // (plus the sequential baseline for the scaling comparison); the
    // full run sweeps 1/2/4 for the per-thread-count BENCH rows.
    let thread_counts: Vec<usize> = match threads {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None if smoke => vec![1],
        None => vec![1, 2, 4],
    };

    check_correctness(*thread_counts.last().unwrap());
    let mut rows = Vec::new();
    for &w in &thread_counts {
        rows.push(measure_rv32(w, cycles, warmup));
        rows.push(measure_wide(w, cycles, warmup));
    }
    // Checkpoint overhead as the fraction of the timed window spent
    // inside snapshot captures (0.05 = 5% of wall-clock on snapshots).
    // The window is stretched to cover at least 16 captures so the
    // fraction averages out single-capture jitter — with only a couple
    // of captures, one slow one (scheduler preemption, allocator slow
    // path) would swing the number past any sensible gate.
    let overhead = checkpoint_every.map(|every| {
        let ckpt_cycles = cycles.max(every.saturating_mul(16));
        let (row, frac) = measure_rv32_checkpointed(1, ckpt_cycles, warmup, every);
        rows.push(row);
        (every, frac)
    });

    println!("{{");
    println!("  \"bench\": \"sim_throughput\",");
    println!("  \"methodology\": \"{warmup} warmup cycles then {cycles} timed cycles per row\",");
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"design\": \"{}\", \"workers\": {}, \"cycles\": {}, \"warmup\": {}, \"checkpoint_every\": {}, \"cycles_per_sec\": {:.0}}}{}",
            r.design, r.workers, r.cycles, r.warmup, r.checkpoint_every, r.cycles_per_sec, comma
        );
    }
    println!("  ]{}", if overhead.is_some() { "," } else { "" });
    if let Some((every, frac)) = overhead {
        println!("  \"checkpoint_overhead\": {{\"interval\": {every}, \"fraction\": {frac:.4}}}");
    }
    println!("}}");

    if smoke {
        // Thresholds sit well above the pre-PR-2 tree-walking
        // interpreter (183k / 49k cycles/sec, see
        // BENCH_sim_throughput.json) and well below the compiled
        // engine's measured numbers (≈6M / ≈400k), with slack for slow
        // CI runners — a regression to interpreter-class speed fails.
        let floor = [("rv32_core", 500_000.0), ("wide_datapath", 100_000.0)];
        for (design, min) in floor {
            let r = rows
                .iter()
                .find(|r| r.design == design && r.workers == 1)
                .expect("sequential row present");
            assert!(
                r.cycles_per_sec > min,
                "{}: throughput {:.0} cycles/sec below smoke floor {:.0}",
                r.design,
                r.cycles_per_sec,
                min
            );
        }

        // Scaling gate: on a multi-core host, the parallel wide-datapath
        // sweep must not be pathologically slower than sequential (0.5×
        // allows scheduler noise on loaded runners; real regressions —
        // e.g. a barrier per def instead of per level — land far below).
        let multi_core = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        if let Some(n) = threads.filter(|&n| n > 1) {
            let seq = rows
                .iter()
                .find(|r| r.design == "wide_datapath" && r.workers == 1)
                .expect("sequential wide row");
            let par = rows
                .iter()
                .find(|r| r.design == "wide_datapath" && r.workers == n)
                .expect("parallel wide row");
            if multi_core {
                assert!(
                    par.cycles_per_sec > 0.5 * seq.cycles_per_sec,
                    "pathological scaling: wide_datapath at {} workers runs {:.0} cycles/sec vs {:.0} sequential",
                    n,
                    par.cycles_per_sec,
                    seq.cycles_per_sec
                );
            } else {
                eprintln!("single-core host: skipping the parallel scaling gate");
            }
        }
        // Checkpoint-overhead gate: auto-checkpointing at the
        // requested cadence must cost <10% rv32 throughput. Each
        // snapshot deep-copies all signal values and memories, so the
        // cadence is the knob: the runtime default (2048, one per
        // execution slice) measures a few percent here, and CI runs
        // this gate at that cadence. Regressions that make capture
        // non-amortized (per-cycle allocation, cloning static tables)
        // overshoot 10% by an order of magnitude.
        if let Some((every, frac)) = overhead {
            assert!(
                frac < 0.10,
                "checkpointing spends {:.1}% of wall-clock at interval {}, exceeding the 10% gate",
                frac * 100.0,
                every
            );
        }
        eprintln!("smoke ok");
    }
}
