//! §4.1 size experiment: "We have noticed about 30% increase in the
//! symbol table size when the debug mode is on."
//!
//! Compiles several designs in release and debug mode and reports
//! symbol-table rows, bytes, and surviving/dropped breakpoint counts.
//!
//! Run with `cargo run --release -p bench --bin symtab_size`.

use bench::{compile_core, compile_dsp, compile_dual, symbols_for};

fn main() {
    println!("Symbol-table size: debug mode vs optimized (paper: ~30% growth)\n");
    println!(
        "{:<12} {:>11} {:>11} {:>9} {:>12} {:>12} {:>9}",
        "design", "rows(rel)", "rows(dbg)", "growth", "bytes(rel)", "bytes(dbg)", "growth"
    );

    type DesignBuilder = Box<dyn Fn(bool) -> bench::CompiledCore>;
    let designs: Vec<(&str, DesignBuilder)> = vec![
        ("rv32-core", Box::new(compile_core)),
        ("rv32-dual", Box::new(compile_dual)),
        ("fir-dsp", Box::new(compile_dsp)),
    ];

    for (name, compile) in designs {
        let rel = compile(false);
        let dbg = compile(true);
        let st_rel = symbols_for(&rel);
        let st_dbg = symbols_for(&dbg);
        let rows_growth = (st_dbg.row_count() as f64 / st_rel.row_count() as f64 - 1.0) * 100.0;
        let bytes_growth =
            (st_dbg.size_in_bytes() as f64 / st_rel.size_in_bytes() as f64 - 1.0) * 100.0;
        println!(
            "{:<12} {:>11} {:>11} {:>8.1}% {:>12} {:>12} {:>8.1}%",
            name,
            st_rel.row_count(),
            st_dbg.row_count(),
            rows_growth,
            st_rel.size_in_bytes(),
            st_dbg.size_in_bytes(),
            bytes_growth
        );
        println!(
            "  breakpoints dropped by optimization: release={}, debug={}",
            rel.debug_table.dropped, dbg.debug_table.dropped
        );
    }
}
