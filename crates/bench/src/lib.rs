//! Shared harness for the paper's experiments.
//!
//! Figure 5 measures RocketChip benchmark simulation time under four
//! configurations; this module provides the four equivalents over the
//! `rv32` core:
//!
//! * **baseline** — optimized compile, plain simulation;
//! * **baseline + hgdb** — optimized compile, hgdb runtime attached
//!   (empty scheduler checked every clock edge — the paper's <5%
//!   claim);
//! * **debug** — debug-mode compile (`DontTouch` keeps every annotated
//!   signal, like `-O0`), plain simulation;
//! * **debug + hgdb** — debug compile with the runtime attached.

use bits::Bits;
use hgf::CircuitBuilder;
use hgf_ir::passes::DebugTable;
use hgf_ir::{Circuit, CircuitState};
use rtl_sim::{SimConfig, SimControl, Simulator};
use rv32::{build_core, build_dual_core, CoreConfig, Program};
use symtab::SymbolTable;

/// The four Figure 5 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigConfig {
    /// Optimized build, no debugger.
    Baseline,
    /// Optimized build with hgdb attached (no breakpoints).
    BaselineHgdb,
    /// Debug build (unoptimized), no debugger.
    Debug,
    /// Debug build with hgdb attached.
    DebugHgdb,
}

impl FigConfig {
    /// All four, in the paper's legend order.
    pub fn all() -> [FigConfig; 4] {
        [
            FigConfig::Baseline,
            FigConfig::BaselineHgdb,
            FigConfig::Debug,
            FigConfig::DebugHgdb,
        ]
    }

    /// Whether this configuration compiles in debug mode.
    pub fn debug_build(self) -> bool {
        matches!(self, FigConfig::Debug | FigConfig::DebugHgdb)
    }

    /// Whether the hgdb runtime is attached.
    pub fn hgdb_attached(self) -> bool {
        matches!(self, FigConfig::BaselineHgdb | FigConfig::DebugHgdb)
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            FigConfig::Baseline => "Baseline",
            FigConfig::BaselineHgdb => "Baseline + hgdb",
            FigConfig::Debug => "Debug",
            FigConfig::DebugHgdb => "Debug + hgdb",
        }
    }
}

/// A compiled core design ready for simulation.
pub struct CompiledCore {
    /// Lowered circuit.
    pub circuit: Circuit,
    /// Collected debug table.
    pub debug_table: DebugTable,
    /// Top module name.
    pub top: String,
}

/// Compiles the single-core design (optionally in debug mode).
pub fn compile_core(debug_mode: bool) -> CompiledCore {
    let cfg = CoreConfig {
        imem_words: 4096,
        dmem_words: 4096,
    };
    let mut cb = CircuitBuilder::new();
    build_core(&mut cb, "cpu", cfg);
    let circuit = cb.finish("cpu").expect("core elaborates");
    let mut state = CircuitState::new(circuit);
    let debug_table = hgf_ir::passes::compile(&mut state, debug_mode).expect("core compiles");
    CompiledCore {
        circuit: state.circuit,
        debug_table,
        top: "cpu".into(),
    }
}

/// Compiles the dual-core design for `mt-*` workloads.
pub fn compile_dual(debug_mode: bool) -> CompiledCore {
    let cfg = CoreConfig {
        imem_words: 4096,
        dmem_words: 4096,
    };
    let mut cb = CircuitBuilder::new();
    build_dual_core(&mut cb, "soc", cfg);
    let circuit = cb.finish("soc").expect("soc elaborates");
    let mut state = CircuitState::new(circuit);
    let debug_table = hgf_ir::passes::compile(&mut state, debug_mode).expect("soc compiles");
    CompiledCore {
        circuit: state.circuit,
        debug_table,
        top: "soc".into(),
    }
}

/// Builds the symbol table for a compiled core.
pub fn symbols_for(core: &CompiledCore) -> SymbolTable {
    symtab::from_debug_table(&core.circuit, &core.debug_table).expect("symbol table builds")
}

/// Compiles a generator-style DSP design: a 64-tap unrolled FIR whose
/// per-iteration temporaries include zero-coefficient products
/// (constant-folded away), duplicated subexpressions (CSE'd) and
/// debug-only probes (dead-code-eliminated). This is the regime the
/// paper's §4.1 "~30% larger symbol table in debug mode" measurement
/// lives in: optimization erases debug visibility unless `DontTouch`
/// protects it.
pub fn compile_dsp(debug_mode: bool) -> CompiledCore {
    const TAPS: usize = 64;
    const COEFFS: [u64; 8] = [0, 1, 0, 3, 0, 2, 0, 5];
    let mut cb = CircuitBuilder::new();
    cb.module("fir", |m| {
        let x = m.input("x", 16);
        let y = m.output("y", 16);
        // Tap delay line.
        let mut delayed = x.clone();
        let mut taps = Vec::new();
        for t in 0..TAPS {
            let r = m.reg(format!("z{t}"), 16, Some(0));
            m.assign(&r, delayed.clone());
            taps.push(r.sig());
            delayed = r.sig();
        }
        // Unrolled multiply-accumulate; every iteration shares one
        // generator source line, and many temporaries do not survive
        // optimization.
        let mut acc = m.lit(0, 16);
        for (t, tap) in taps.iter().enumerate() {
            let coeff = COEFFS[t % COEFFS.len()];
            let prod = m.node(format!("prod_{t}"), tap * &m.lit(coeff, 16));
            // Debug probes nothing consumes: DCE removes them in
            // release; DontTouch keeps them in debug mode.
            let _probe = m.node(format!("probe_{t}"), tap ^ &m.lit(coeff, 16));
            let _parity = m.node(format!("parity_{t}"), prod.reduce_xor());
            // A duplicated expression CSE merges in release.
            let dup = m.node(format!("dup_{t}"), tap * &m.lit(coeff, 16));
            let _ = dup;
            acc = m.node(format!("acc_{t}"), acc + prod);
        }
        m.assign(&y, acc);
    });
    let circuit = cb.finish("fir").expect("fir elaborates");
    let mut state = CircuitState::new(circuit);
    let debug_table = hgf_ir::passes::compile(&mut state, debug_mode).expect("fir compiles");
    CompiledCore {
        circuit: state.circuit,
        debug_table,
        top: "fir".into(),
    }
}

/// Compiles a wide-datapath synthetic design: a pipeline of 192-bit
/// registers mixed through xor/add/mux stages with narrow control.
/// This is the multi-word (`Bits` heap representation) stress case for
/// the `sim_throughput` benchmark, complementing the rv32 core whose
/// signals are almost all ≤64 bits wide.
pub fn compile_wide(stages: usize) -> CompiledCore {
    const W: u32 = 192;
    let mut cb = CircuitBuilder::new();
    cb.module("wide", |m| {
        let x = m.input("x", W);
        let sel = m.input("sel", 1);
        let y = m.output("y", W);
        let parity = m.output("parity", 1);
        let mut cur = x.clone();
        for s in 0..stages {
            let r = m.reg(format!("st{s}"), W, Some(0));
            let rot = cur.slice(W - 2, 0).cat(&cur.bit(W - 1));
            let mixed = m.node(
                format!("mix{s}"),
                (&rot ^ &r.sig()) + m.lit(0x9e37_79b9_7f4a_7c15, W),
            );
            let next = sel.select(&mixed, &rot);
            m.assign(&r, next.clone());
            cur = next;
        }
        m.assign(&y, cur.clone());
        m.assign(&parity, cur.reduce_xor());
    });
    let circuit = cb.finish("wide").expect("wide elaborates");
    let mut state = CircuitState::new(circuit);
    let debug_table = hgf_ir::passes::compile(&mut state, false).expect("wide compiles");
    CompiledCore {
        circuit: state.circuit,
        debug_table,
        top: "wide".into(),
    }
}

/// Builds a ready-to-run wide-datapath simulator: `sel` asserted and a
/// nonzero seed on `x`, so every stage mixes each cycle. Shared by the
/// `sim_throughput` bench and binary so both measure the same design
/// under the same drive.
pub fn loaded_wide_sim(stages: usize) -> Simulator {
    loaded_wide_sim_with(stages, SimConfig::default())
}

/// [`loaded_wide_sim`] with an explicit engine configuration — used by
/// the `--threads N` rows of the `sim_throughput` binary to measure the
/// same design under different worker counts.
pub fn loaded_wide_sim_with(stages: usize, config: SimConfig) -> Simulator {
    let wide = compile_wide(stages);
    let mut sim = Simulator::with_config(&wide.circuit, config).expect("wide sim builds");
    sim.poke("wide.sel", Bits::from_bool(true)).expect("sel");
    sim.poke("wide.x", Bits::from_u64(0xDEAD_BEEF, 192))
        .expect("x");
    sim
}

/// Steps the simulator `cycles` clock edges and returns the measured
/// cycles/second — the raw simulation throughput number recorded in
/// `BENCH_sim_throughput.json`.
pub fn measure_throughput(sim: &mut Simulator, cycles: u64) -> f64 {
    measure_throughput_warmed(sim, 0, cycles)
}

/// [`measure_throughput`] with `warmup` untimed cycles first, so the
/// timed window starts with caches and the worker pool hot.
pub fn measure_throughput_warmed(sim: &mut Simulator, warmup: u64, cycles: u64) -> f64 {
    for _ in 0..warmup {
        sim.step_clock();
    }
    let start = std::time::Instant::now();
    for _ in 0..cycles {
        sim.step_clock();
    }
    let secs = start.elapsed().as_secs_f64();
    cycles as f64 / secs.max(1e-9)
}

/// [`measure_throughput_warmed`] with a checkpoint captured every
/// `every` cycles inside the timed window, reusing one snapshot buffer
/// across captures ([`Simulator::snapshot_into`]) exactly like the
/// runtime's checkpoint ring in steady state, which recycles evicted
/// snapshots as capture buffers — the checkpoint-overhead numbers
/// recorded in `BENCH_sim_throughput.json`.
///
/// Returns `(cycles_per_sec, overhead_fraction)` where the fraction is
/// the wall-clock share of the window spent capturing snapshots.
/// Measuring the captures directly inside one window — instead of
/// diffing two separately-timed runs — keeps the number meaningful on
/// hosts whose absolute throughput swings run-to-run (frequency
/// scaling, noisy CI neighbors): both numerator and denominator see
/// the same machine conditions.
pub fn measure_throughput_checkpointed(
    sim: &mut Simulator,
    warmup: u64,
    cycles: u64,
    every: u64,
) -> (f64, f64) {
    assert!(every > 0, "checkpoint interval must be positive");
    for _ in 0..warmup {
        sim.step_clock();
    }
    // Prime the reused capture buffer outside the timed window.
    let mut snap = sim.snapshot();
    let mut in_snapshots = std::time::Duration::ZERO;
    let start = std::time::Instant::now();
    for i in 0..cycles {
        sim.step_clock();
        if (i + 1) % every == 0 {
            let t = std::time::Instant::now();
            sim.snapshot_into(&mut snap);
            in_snapshots += t.elapsed();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    drop(snap);
    let overhead = in_snapshots.as_secs_f64() / secs.max(1e-9);
    (cycles as f64 / secs.max(1e-9), overhead)
}

/// Creates a simulator with `program` loaded (and the second-half
/// program on core1 for dual-core designs).
pub fn loaded_sim(core: &CompiledCore, workload: &Program) -> Simulator {
    loaded_sim_with(core, workload, SimConfig::default())
}

/// [`loaded_sim`] with an explicit engine configuration.
pub fn loaded_sim_with(core: &CompiledCore, workload: &Program, config: SimConfig) -> Simulator {
    let mut sim = Simulator::with_config(&core.circuit, config).expect("sim builds");
    if workload.dual_core {
        let (src0, src1) = dual_sources(workload);
        let p0 = rv32::asm::assemble(&src0).expect("assembles");
        let p1 = rv32::asm::assemble(&src1).expect("assembles");
        for (i, w) in p0.iter().enumerate() {
            sim.poke_mem(
                &format!("{}.core0.imem", core.top),
                i,
                Bits::from_u64(*w as u64, 32),
            )
            .expect("imem");
        }
        for (i, w) in p1.iter().enumerate() {
            sim.poke_mem(
                &format!("{}.core1.imem", core.top),
                i,
                Bits::from_u64(*w as u64, 32),
            )
            .expect("imem");
        }
    } else {
        let program = rv32::asm::assemble(&workload.source).expect("assembles");
        for (i, w) in program.iter().enumerate() {
            sim.poke_mem(
                &format!("{}.imem", core.top),
                i,
                Bits::from_u64(*w as u64, 32),
            )
            .expect("imem");
        }
    }
    sim
}

/// The two per-core halves of a dual-core workload.
///
/// # Panics
///
/// Panics if the workload is not dual-core.
pub fn dual_sources(workload: &Program) -> (String, String) {
    use rv32::programs::{matmul_source, vvadd_source};
    match workload.name {
        "mt-matmul" => (matmul_source(0, 3, 6), matmul_source(3, 6, 6)),
        "mt-vvadd" => (vvadd_source(0, 32), vvadd_source(32, 64)),
        other => panic!("{other} is not a dual-core workload"),
    }
}

/// Runs a loaded simulator to halt without hgdb; returns cycles. The
/// halt probe is interned once — the loop itself is string-free.
pub fn run_plain(sim: &mut Simulator, top: &str, max_cycles: u64) -> u64 {
    let halted = sim
        .signal_id(&format!("{top}.halted"))
        .expect("halted port");
    let mut cycles = 0;
    while cycles < max_cycles {
        sim.step_clock();
        cycles += 1;
        if sim.peek_id(halted).is_truthy() {
            break;
        }
    }
    cycles
}

/// Attaches the hgdb runtime to a loaded simulator (the one-time cost:
/// scheduler precomputation and enable-condition parsing, §3.2).
pub fn attach_runtime(sim: Simulator, symbols: SymbolTable) -> hgdb::Runtime<Simulator> {
    hgdb::Runtime::attach(sim, symbols).expect("attach")
}

/// Runs an attached runtime to halt (no breakpoints inserted: the
/// Figure 2 fast path executes each edge). This is the steady-state
/// loop Figure 5 times.
pub fn run_attached(runtime: &mut hgdb::Runtime<Simulator>, top: &str, max_cycles: u64) -> u64 {
    let halted = runtime
        .sim()
        .signal_id(&format!("{top}.halted"))
        .expect("halted port");
    let mut cycles = 0;
    while cycles < max_cycles {
        // continue_run with no breakpoints advances one bounded hop;
        // bound 1 gives us the per-cycle halt check the plain loop has.
        match runtime.continue_run(Some(1)).expect("run") {
            hgdb::RunOutcome::Finished { .. } => {}
            hgdb::RunOutcome::Stopped(_) => unreachable!("no breakpoints inserted"),
        }
        cycles += 1;
        if runtime.sim().peek_id(halted).is_truthy() {
            break;
        }
    }
    cycles
}

/// Runs a loaded simulator to halt with the hgdb runtime attached;
/// attach cost included (convenience for correctness tests — the
/// timing harnesses separate attach from the steady-state run).
pub fn run_with_hgdb(
    sim: Simulator,
    symbols: SymbolTable,
    top: &str,
    max_cycles: u64,
) -> (u64, Simulator) {
    let mut runtime = attach_runtime(sim, symbols);
    let cycles = run_attached(&mut runtime, top, max_cycles);
    (cycles, runtime.detach())
}

/// One Figure 5 measurement: runs `workload` under `config`, returning
/// the cycle count (used by the table binary; the criterion bench
/// times the same closure).
pub fn run_workload(config: FigConfig, workload: &Program, max_cycles: u64) -> u64 {
    let core = if workload.dual_core {
        compile_dual(config.debug_build())
    } else {
        compile_core(config.debug_build())
    };
    let mut sim = loaded_sim(&core, workload);
    if config.hgdb_attached() {
        let symbols = symbols_for(&core);
        let (cycles, _) = run_with_hgdb(sim, symbols, &core.top, max_cycles);
        cycles
    } else {
        run_plain(&mut sim, &core.top, max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_complete_a_workload() {
        let workload = rv32::programs::multiply();
        let mut cycles = Vec::new();
        for config in FigConfig::all() {
            let c = run_workload(config, &workload, 1_000_000);
            assert!(c > 100, "{}: only {c} cycles", config.label());
            assert!(c < 1_000_000, "{}: did not halt", config.label());
            cycles.push(c);
        }
        // The functional result is identical regardless of config:
        // same cycle count everywhere (hgdb must not perturb timing).
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "cycle counts diverged: {cycles:?}"
        );
    }

    #[test]
    fn debug_mode_grows_the_symbol_table() {
        let release = compile_core(false);
        let debug = compile_core(true);
        let release_st = symbols_for(&release);
        let debug_st = symbols_for(&debug);
        assert!(
            debug_st.size_in_bytes() > release_st.size_in_bytes(),
            "debug {} <= release {}",
            debug_st.size_in_bytes(),
            release_st.size_in_bytes()
        );
    }

    #[test]
    fn parallel_workers_reproduce_sequential_tohost() {
        let core = compile_core(false);
        let workload = rv32::programs::multiply();
        let mut results = Vec::new();
        for workers in [1, 4] {
            let mut cfg = SimConfig::with_workers(workers);
            // Force the sharded schedules even on small dirty sets so
            // this test exercises the parallel paths regardless of
            // sweep size.
            cfg.min_parallel_work = 1;
            let mut sim = loaded_sim_with(&core, &workload, cfg);
            let cycles = run_plain(&mut sim, &core.top, 200_000);
            let tohost = sim.peek("cpu.tohost").expect("tohost").to_u64() as u32;
            results.push((cycles, tohost));
        }
        assert_eq!(results[0], results[1], "parallel run diverged");
        assert_eq!(results[0].1, workload.expected);
    }

    #[test]
    fn dual_core_workload_runs() {
        let workload = rv32::programs::mt_vvadd();
        let c = run_workload(FigConfig::Baseline, &workload, 1_000_000);
        assert!(c > 100 && c < 1_000_000);
    }
}
