//! The built-in battery, L001 through L007.
//!
//! Checks never panic on malformed input: each tolerates High-form
//! circuits, missing modules, and unresolvable names, reporting what
//! it can. Structural width/driver defects are per-module IR walks;
//! L005 consumes the flattening error, and L007 cross-references the
//! debug table against the flattened namespace.

use std::collections::{HashMap, HashSet};

use hgf_ir::{walk_stmts, Circuit, Expr, Module, PortDir, SourceLoc, Stmt};
use rtl_sim::SimError;

use crate::{Code, Diagnostic, Lint, LintContext};

/// Every `(hierarchical prefix, module name)` pair reachable from the
/// top, depth-first — the same order the netlist flattener uses.
fn instance_paths(circuit: &Circuit) -> Vec<(String, String)> {
    fn walk(circuit: &Circuit, module: &Module, path: String, out: &mut Vec<(String, String)>) {
        out.push((path.clone(), module.name.clone()));
        for (inst, m) in module.instances() {
            if let Some(child) = circuit.module(m) {
                walk(circuit, child, format!("{path}.{inst}"), out);
            }
        }
    }
    let mut out = Vec::new();
    if let Some(top) = circuit.module(&circuit.top) {
        walk(circuit, top, top.name.clone(), &mut out);
    }
    out
}

/// The declaration (or driving-connect) location of a module-local
/// signal name, which may be an `instance.port` reference.
fn signal_loc(circuit: &Circuit, module: &Module, name: &str) -> Option<SourceLoc> {
    if let Some(p) = module.ports.iter().find(|p| p.name == name) {
        return Some(p.loc.clone());
    }
    if let Some((inst, port)) = name.split_once('.') {
        if let Some(child) = module.instance_module(inst).and_then(|m| circuit.module(m)) {
            if let Some(p) = child.ports.iter().find(|p| p.name == port) {
                return Some(p.loc.clone());
            }
        }
    }
    for s in walk_stmts(&module.stmts) {
        if s.declared_signal() == Some(name) {
            return Some(s.loc().clone());
        }
    }
    walk_stmts(&module.stmts).find_map(|s| match s {
        Stmt::Connect { target, loc, .. } if target == name => Some(loc.clone()),
        _ => None,
    })
}

/// Resolves a flattened full path (`top.u0.sum_1`) back to a source
/// location by walking the instance hierarchy.
fn resolve_loc(circuit: &Circuit, full: &str) -> Option<SourceLoc> {
    let mut parts = full.split('.');
    let top = parts.next()?;
    let mut module = circuit.module(top)?;
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() {
        return Some(module.loc.clone());
    }
    let mut i = 0;
    while i + 1 < rest.len() {
        match module
            .instance_module(rest[i])
            .and_then(|m| circuit.module(m))
        {
            Some(child) => {
                module = child;
                i += 1;
            }
            None => break,
        }
    }
    signal_loc(circuit, module, &rest[i..].join("."))
}

/// L001 — whole-circuit static width verification.
///
/// Re-applies `ir::expr`'s width rules as a pre-simulation pass and
/// collects *every* violation, where `Circuit::validate` stops at the
/// first: ill-typed expressions, connect-width mismatches, non-1-bit
/// `when` conditions and write enables.
pub struct WidthCheck;

impl Lint for WidthCheck {
    fn code(&self) -> Code {
        Code::L001
    }

    fn summary(&self) -> &'static str {
        "static width verification over every module expression"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let circuit = &cx.state.circuit;
        for module in &circuit.modules {
            let table = module.signal_table(circuit);
            let width_of = |n: &str| table.get(n).map(|(w, _)| *w);
            let mname = &module.name;
            let mut emit = |msg: String, loc: &SourceLoc| {
                out.push(Diagnostic::new(Code::L001, msg, Some(loc.clone())));
            };
            for stmt in walk_stmts(&module.stmts) {
                match stmt {
                    Stmt::Node {
                        name, expr, loc, ..
                    } => {
                        if let Err(e) = expr.width(&width_of) {
                            emit(format!("node `{mname}.{name}`: {e}"), loc);
                        }
                    }
                    Stmt::Connect {
                        target, expr, loc, ..
                    } => match expr.width(&width_of) {
                        Err(e) => emit(format!("connect to `{mname}.{target}`: {e}"), loc),
                        Ok(got) => {
                            if let Some(expected) = width_of(target) {
                                if got != expected {
                                    emit(
                                        format!(
                                            "connect to `{mname}.{target}`: expression width \
                                             {got} does not match declared width {expected}"
                                        ),
                                        loc,
                                    );
                                }
                            }
                        }
                    },
                    Stmt::When { cond, loc, .. } => match cond.width(&width_of) {
                        Err(e) => emit(format!("when condition in `{mname}`: {e}"), loc),
                        Ok(w) if w != 1 => emit(
                            format!("when condition in `{mname}` must be 1 bit, got {w}"),
                            loc,
                        ),
                        Ok(_) => {}
                    },
                    Stmt::MemRead { mem, addr, loc, .. } => {
                        if let Err(e) = addr.width(&width_of) {
                            emit(format!("read address of `{mname}.{mem}`: {e}"), loc);
                        }
                    }
                    Stmt::MemWrite {
                        mem,
                        addr,
                        data,
                        en,
                        loc,
                        ..
                    } => {
                        for (what, e) in [("write address", addr), ("write data", data)] {
                            if let Err(err) = e.width(&width_of) {
                                emit(format!("{what} of `{mname}.{mem}`: {err}"), loc);
                            }
                        }
                        match en.width(&width_of) {
                            Err(e) => emit(format!("write enable of `{mname}.{mem}`: {e}"), loc),
                            Ok(w) if w != 1 => emit(
                                format!("write enable of `{mname}.{mem}` must be 1 bit, got {w}"),
                                loc,
                            ),
                            Ok(_) => {}
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// L002 — undriven signals.
///
/// Wires and output ports with no connect (at any scope depth) and no
/// node definition, plus instance *inputs* the parent never connects.
/// Registers are exempt: a register without a connect holds its value
/// (L006 covers the missing reset).
pub struct UndrivenCheck;

impl Lint for UndrivenCheck {
    fn code(&self) -> Code {
        Code::L002
    }

    fn summary(&self) -> &'static str {
        "undriven wires, output ports, and instance inputs"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let circuit = &cx.state.circuit;
        for module in &circuit.modules {
            let mname = &module.name;
            let driven: HashSet<&str> = walk_stmts(&module.stmts)
                .filter_map(|s| match s {
                    Stmt::Connect { target, .. } => Some(target.as_str()),
                    Stmt::Node { name, .. } | Stmt::MemRead { name, .. } => Some(name.as_str()),
                    _ => None,
                })
                .collect();
            for p in module.ports.iter().filter(|p| p.dir == PortDir::Output) {
                if !driven.contains(p.name.as_str()) {
                    out.push(Diagnostic::new(
                        Code::L002,
                        format!("output port `{mname}.{}` is never driven", p.name),
                        Some(p.loc.clone()),
                    ));
                }
            }
            for stmt in walk_stmts(&module.stmts) {
                match stmt {
                    Stmt::Wire { name, loc, .. } if !driven.contains(name.as_str()) => {
                        out.push(Diagnostic::new(
                            Code::L002,
                            format!("wire `{mname}.{name}` is never driven"),
                            Some(loc.clone()),
                        ));
                    }
                    Stmt::Instance {
                        name,
                        module: m,
                        loc,
                        ..
                    } => {
                        let Some(child) = circuit.module(m) else {
                            continue;
                        };
                        for p in child.ports.iter().filter(|p| p.dir == PortDir::Input) {
                            let port = format!("{name}.{}", p.name);
                            if !driven.contains(port.as_str()) {
                                out.push(Diagnostic::new(
                                    Code::L002,
                                    format!("instance input `{mname}.{port}` is never driven"),
                                    Some(loc.clone()),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// L003 — multiply-driven signals.
///
/// Two connects to the same target within one lexical scope (the same
/// statement list). Connects in *sibling* `when` branches are legal
/// High form — last-connect-wins resolution happens per branch — so
/// each branch body is scanned independently.
pub struct MultiplyDrivenCheck;

impl MultiplyDrivenCheck {
    fn scan(module: &str, stmts: &[Stmt], out: &mut Vec<Diagnostic>) {
        let mut first: HashMap<&str, &SourceLoc> = HashMap::new();
        for stmt in stmts {
            match stmt {
                Stmt::Connect { target, loc, .. } => {
                    if let Some(prev) = first.get(target.as_str()) {
                        out.push(
                            Diagnostic::new(
                                Code::L003,
                                format!("`{module}.{target}` is driven more than once in the same scope"),
                                Some(loc.clone()),
                            )
                            .note(format!("first driven at {prev}")),
                        );
                    } else {
                        first.insert(target, loc);
                    }
                }
                Stmt::When {
                    then_body,
                    else_body,
                    ..
                } => {
                    MultiplyDrivenCheck::scan(module, then_body, out);
                    MultiplyDrivenCheck::scan(module, else_body, out);
                }
                _ => {}
            }
        }
    }
}

impl Lint for MultiplyDrivenCheck {
    fn code(&self) -> Code {
        Code::L003
    }

    fn summary(&self) -> &'static str {
        "multiply-driven signals within one lexical scope"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for module in &cx.state.circuit.modules {
            MultiplyDrivenCheck::scan(&module.name, &module.stmts, out);
        }
    }
}

/// L004 — dead logic.
///
/// Recomputes the DCE pass's liveness — output-port connects,
/// instance-input connects, and memory writes are the observable
/// roots — but *without* the DontTouch roots debug mode adds. Declared
/// signals that reach no root are reported; when such a signal is
/// DontTouch-protected, the diagnostic notes that debug mode is what
/// keeps it alive (the paper's -O0 analogue keeping dead logic in the
/// build on purpose).
pub struct DeadLogicCheck;

impl DeadLogicCheck {
    /// Collects, per target, the expressions whose references keep it
    /// alive once the target is known live: its drivers plus the
    /// enclosing `when` conditions (which lower to mux selects).
    fn contributors<'m>(
        stmts: &'m [Stmt],
        conds: &mut Vec<&'m Expr>,
        defs: &mut HashMap<&'m str, Vec<&'m Expr>>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Node { name, expr, .. } => {
                    defs.entry(name).or_default().push(expr);
                }
                Stmt::MemRead { name, addr, .. } => {
                    defs.entry(name).or_default().push(addr);
                }
                Stmt::Connect { target, expr, .. } => {
                    let entry = defs.entry(target).or_default();
                    entry.push(expr);
                    entry.extend(conds.iter().copied());
                }
                Stmt::When {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    conds.push(cond);
                    DeadLogicCheck::contributors(then_body, conds, defs);
                    DeadLogicCheck::contributors(else_body, conds, defs);
                    conds.pop();
                }
                _ => {}
            }
        }
    }
}

impl Lint for DeadLogicCheck {
    fn code(&self) -> Code {
        Code::L004
    }

    fn summary(&self) -> &'static str {
        "dead logic: declared signals that reach no observable root"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let state = cx.state;
        for module in &state.circuit.modules {
            let mname = &module.name;
            let mut defs: HashMap<&str, Vec<&Expr>> = HashMap::new();
            DeadLogicCheck::contributors(&module.stmts, &mut Vec::new(), &mut defs);

            let out_ports: HashSet<&str> = module
                .ports
                .iter()
                .filter(|p| p.dir == PortDir::Output)
                .map(|p| p.name.as_str())
                .collect();

            let mut live: HashSet<String> = HashSet::new();
            let mut work: Vec<String> = Vec::new();
            let add = |name: &str, live: &mut HashSet<String>, work: &mut Vec<String>| {
                if live.insert(name.to_owned()) {
                    work.push(name.to_owned());
                }
            };
            let mut conds: Vec<&Expr> = Vec::new();
            let mut roots: Vec<&Expr> = Vec::new();
            fn root_exprs<'m>(
                stmts: &'m [Stmt],
                out_ports: &HashSet<&str>,
                conds: &mut Vec<&'m Expr>,
                roots: &mut Vec<&'m Expr>,
            ) {
                for stmt in stmts {
                    match stmt {
                        Stmt::Connect { target, expr, .. }
                            if out_ports.contains(target.as_str()) || target.contains('.') =>
                        {
                            roots.push(expr);
                            roots.extend(conds.iter().copied());
                        }
                        Stmt::MemWrite { addr, data, en, .. } => {
                            roots.extend([addr, data, en]);
                            roots.extend(conds.iter().copied());
                        }
                        Stmt::When {
                            cond,
                            then_body,
                            else_body,
                            ..
                        } => {
                            conds.push(cond);
                            root_exprs(then_body, out_ports, conds, roots);
                            root_exprs(else_body, out_ports, conds, roots);
                            conds.pop();
                        }
                        _ => {}
                    }
                }
            }
            root_exprs(&module.stmts, &out_ports, &mut conds, &mut roots);
            for e in roots {
                for r in e.refs() {
                    add(&r, &mut live, &mut work);
                }
            }

            while let Some(name) = work.pop() {
                if let Some(exprs) = defs.get(name.as_str()) {
                    for e in exprs.clone() {
                        for r in e.refs() {
                            add(&r, &mut live, &mut work);
                        }
                    }
                }
            }

            for stmt in walk_stmts(&module.stmts) {
                let Some(name) = stmt.declared_signal() else {
                    continue;
                };
                if live.contains(name) {
                    continue;
                }
                let mut d = Diagnostic::new(
                    Code::L004,
                    format!("`{mname}.{name}` is dead: it reaches no output, instance input, or memory write"),
                    Some(stmt.loc().clone()),
                );
                if state.annotations.is_dont_touch(mname, name) {
                    d = d.note(
                        "kept alive only by a debug-mode DontTouch annotation; \
                         a release build would eliminate it",
                    );
                }
                out.push(d);
            }
        }
    }
}

/// L005 — combinational loops.
///
/// Consumes the flattener's [`SimError::CombinationalLoop`], which
/// (since the minimal-cycle walker) carries one exact cycle — first
/// signal repeated at the end — and resolves every hop back to a
/// generator source location.
pub struct CombLoopCheck;

impl Lint for CombLoopCheck {
    fn code(&self) -> Code {
        Code::L005
    }

    fn summary(&self) -> &'static str {
        "combinational loops, reported as one exact cycle path"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(SimError::CombinationalLoop(path)) = cx.netlist_err else {
            return;
        };
        let circuit = &cx.state.circuit;
        let locs: Vec<Option<SourceLoc>> =
            path.iter().map(|full| resolve_loc(circuit, full)).collect();
        let mut d = Diagnostic::new(
            Code::L005,
            format!("combinational loop: {}", path.join(" -> ")),
            locs.iter().flatten().next().cloned(),
        );
        // One note per distinct hop (the closing repeat adds nothing).
        let hops = if path.len() > 1 {
            &path[..path.len() - 1]
        } else {
            &path[..]
        };
        for (full, loc) in hops.iter().zip(&locs) {
            d = d.note(match loc {
                Some(l) => format!("`{full}` driven at {l}"),
                None => format!("`{full}` has no source location"),
            });
        }
        out.push(d);
    }
}

/// L006 — registers with no reset value.
///
/// A register declared without an `init` never sees the global reset:
/// it powers up at zero and holds through `reset`, which is almost
/// never what a generator author intended.
pub struct NoResetCheck;

impl Lint for NoResetCheck {
    fn code(&self) -> Code {
        Code::L006
    }

    fn summary(&self) -> &'static str {
        "registers with no reset (initial) value"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for module in &cx.state.circuit.modules {
            for stmt in walk_stmts(&module.stmts) {
                if let Stmt::Reg {
                    name,
                    init: None,
                    loc,
                    ..
                } = stmt
                {
                    out.push(Diagnostic::new(
                        Code::L006,
                        format!(
                            "register `{}.{name}` has no reset value and ignores the global reset",
                            module.name
                        ),
                        Some(loc.clone()),
                    ));
                }
            }
        }
    }
}

/// L007 — debug-symbol coverage.
///
/// Two halves: (a) every [`DebugTable`](hgf_ir::passes::DebugTable)
/// variable, flattened through each instance of its module, must
/// resolve to a signal in the netlist namespace — catching symbols
/// stranded by const-prop/CSE/DCE; (b) every debug annotation must
/// have produced a surviving breakpoint — an annotated source line
/// with no breakpoint group is unreachable to the debugger.
pub struct SymbolCoverageCheck;

impl Lint for SymbolCoverageCheck {
    fn code(&self) -> Code {
        Code::L007
    }

    fn summary(&self) -> &'static str {
        "debug-symbol coverage: stranded variables, dropped breakpoints"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let circuit = &cx.state.circuit;
        if let Some(netlist) = cx.netlist {
            for (path, mname) in instance_paths(circuit) {
                for var in cx.table.variables.iter().filter(|v| v.module == mname) {
                    let full = format!("{path}.{}", var.rtl);
                    if netlist.lookup(&full).is_none() {
                        let loc = circuit
                            .module(&var.module)
                            .and_then(|m| signal_loc(circuit, m, &var.rtl));
                        out.push(
                            Diagnostic::new(
                                Code::L007,
                                format!(
                                    "debug variable `{}` of `{mname}` does not resolve: \
                                     `{full}` is not in the netlist",
                                    var.name
                                ),
                                loc,
                            )
                            .note("the symbol was stranded by optimization"),
                        );
                    }
                }
            }
        }
        for ann in cx.state.annotations.debug() {
            let survived = cx
                .table
                .breakpoints
                .iter()
                .any(|b| b.module == ann.module && b.stmt == ann.stmt);
            if !survived {
                out.push(
                    Diagnostic::new(
                        Code::L007,
                        format!(
                            "annotated statement in `{}` produced no breakpoint",
                            ann.module
                        ),
                        Some(ann.loc.clone()),
                    )
                    .note("optimization removed the signals this source line needs"),
                );
            }
        }
    }
}
