#![warn(missing_docs)]
//! Source-located static analysis over the hgdb reproduction's three
//! design representations: the High/Low-form IR ([`CircuitState`]),
//! the flattened combinational def graph ([`FlatNetlist`]), and the
//! collected debug symbols ([`DebugTable`]).
//!
//! The paper's premise is that generator-level debugging stands or
//! falls on the source↔RTL mapping — so defects in that mapping (and
//! in the design it describes) should surface *before* simulation,
//! with generator source locations, not as mid-run `SimError`s. Each
//! check implements [`Lint`] and is registered in a [`Registry`];
//! running the battery yields a [`Report`] of [`Diagnostic`]s that
//! renders for humans ([`std::fmt::Display`]) or machines
//! ([`Report::to_json`]).
//!
//! | Code | Check | Default |
//! |------|-------|---------|
//! | L001 | static width verification (whole circuit)        | deny |
//! | L002 | undriven wires / outputs / instance inputs       | deny |
//! | L003 | multiply-driven signals (same lexical scope)     | deny |
//! | L004 | dead logic (incl. logic debug mode keeps alive)  | warn |
//! | L005 | combinational loops, as an exact cycle path      | deny |
//! | L006 | registers with no reset value                    | warn |
//! | L007 | debug-symbol coverage (variables + breakpoints)  | warn |
//!
//! L004 and L007 are the two *mode-dependent* lints: L004 flags what
//! debug mode deliberately keeps (DontTouch-protected dead logic),
//! L007 flags what release mode deliberately loses (annotations whose
//! signals optimization removed). A driver linting a debug build
//! typically allows L004; one linting a release build allows L007.

mod checks;

pub use checks::{
    CombLoopCheck, DeadLogicCheck, MultiplyDrivenCheck, NoResetCheck, SymbolCoverageCheck,
    UndrivenCheck, WidthCheck,
};

use std::fmt;

use hgf_ir::passes::DebugTable;
use hgf_ir::{CircuitState, SourceLoc};
use microjson::Json;
use rtl_sim::{FlatNetlist, SimError};

/// How a fired lint is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the check does not run.
    Allow,
    /// Reported, but does not fail a deny gate.
    Warn,
    /// Reported and fails [`deny_gate`] / `compile_with_check`.
    Deny,
}

impl Severity {
    /// Lowercase name (`allow` / `warn` / `deny`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of a lint check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Static width verification over every module expression.
    L001,
    /// Undriven wires, output ports, and instance inputs.
    L002,
    /// Multiply-driven signals within one lexical scope.
    L003,
    /// Dead logic: declared signals that reach no observable root.
    L004,
    /// Combinational loops, reported as one exact minimal cycle.
    L005,
    /// Registers with no reset (initial) value.
    L006,
    /// Debug-symbol coverage: stranded variables, dropped breakpoints.
    L007,
}

impl Code {
    /// Every code, in order.
    pub const ALL: [Code; 7] = [
        Code::L001,
        Code::L002,
        Code::L003,
        Code::L004,
        Code::L005,
        Code::L006,
        Code::L007,
    ];

    /// Stable string form (`"L001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::L001 => "L001",
            Code::L002 => "L002",
            Code::L003 => "L003",
            Code::L004 => "L004",
            Code::L005 => "L005",
            Code::L006 => "L006",
            Code::L007 => "L007",
        }
    }

    /// Parses a `"L00x"` string.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity the code carries when the config does not override
    /// it (see the crate-level table).
    pub fn default_severity(self) -> Severity {
        match self {
            Code::L001 | Code::L002 | Code::L003 | Code::L005 => Severity::Deny,
            Code::L004 | Code::L006 | Code::L007 => Severity::Warn,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, the effective severity, a message, an optional
/// generator source location, and free-form notes (secondary
/// locations, explanations).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: Code,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Generator source position, when one could be resolved.
    pub loc: Option<SourceLoc>,
    /// Secondary information (e.g. each hop of a cycle with its
    /// location, or the first driver of a doubly-driven signal).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic (severity is filled in by the registry).
    pub fn new(code: Code, message: impl Into<String>, loc: Option<SourceLoc>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            loc,
            notes: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Machine-readable form (the schema documented in `docs/LINT.md`).
    pub fn to_json(&self) -> Json {
        let loc = match &self.loc {
            Some(l) => Json::object([
                ("file", Json::from(l.file.as_ref())),
                ("line", Json::from(l.line)),
                ("col", Json::from(l.col)),
            ]),
            None => Json::Null,
        };
        Json::object([
            ("code", Json::from(self.code.as_str())),
            ("severity", Json::from(self.severity.as_str())),
            ("message", Json::from(self.message.as_str())),
            ("loc", loc),
            (
                "notes",
                Json::array(self.notes.iter().map(|n| Json::from(n.as_str()))),
            ),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(loc) = &self.loc {
            write!(f, "\n  --> {loc}")?;
        }
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// Per-code severity configuration. Codes not explicitly set use
/// [`Code::default_severity`]. `Allow` skips the check entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: Vec<(Code, Severity)>,
}

impl LintConfig {
    /// The default configuration (no overrides).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Sets a code's severity, replacing any earlier override.
    pub fn set(mut self, code: Code, severity: Severity) -> LintConfig {
        self.overrides.retain(|(c, _)| *c != code);
        self.overrides.push((code, severity));
        self
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Allow`].
    pub fn allow(self, code: Code) -> LintConfig {
        self.set(code, Severity::Allow)
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Warn`].
    pub fn warn(self, code: Code) -> LintConfig {
        self.set(code, Severity::Warn)
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Deny`].
    pub fn deny(self, code: Code) -> LintConfig {
        self.set(code, Severity::Deny)
    }

    /// The effective severity of a code.
    pub fn level(&self, code: Code) -> Severity {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The battery's output: every warn/deny diagnostic, in check order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All diagnostics (allow-level checks never contribute).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of deny-level diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level diagnostics.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether a given code fired at least once.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes that fired, in order.
    pub fn codes(&self) -> Vec<Code> {
        let mut out: Vec<Code> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }

    /// Machine-readable form (the schema documented in `docs/LINT.md`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("clean", Json::from(self.is_clean())),
            ("count", Json::from(self.diagnostics.len())),
            (
                "diagnostics",
                Json::array(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "lint clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        write!(
            f,
            "\n{} diagnostic(s): {} deny, {} warn",
            self.diagnostics.len(),
            self.deny_count(),
            self.warn_count()
        )
    }
}

/// Everything a check may inspect. The netlist is present only when
/// the circuit flattens cleanly; a flattening failure is surfaced via
/// `netlist_err` (a combinational loop there is L005's input).
pub struct LintContext<'a> {
    /// The (possibly still High-form) circuit plus annotations.
    pub state: &'a CircuitState,
    /// Collected debug symbols ([`DebugTable::default`] when linting a
    /// circuit that has not been compiled).
    pub table: &'a DebugTable,
    /// The flattened def graph, when the circuit builds.
    pub netlist: Option<&'a FlatNetlist>,
    /// Why flattening failed, when it did.
    pub netlist_err: Option<&'a SimError>,
}

/// A single check: stateless, identified by its [`Code`], pushing
/// [`Diagnostic`]s into the shared output. The registry sets each
/// diagnostic's effective severity afterwards.
pub trait Lint {
    /// The code this check emits.
    fn code(&self) -> Code;
    /// One-line description (the `docs/LINT.md` table).
    fn summary(&self) -> &'static str;
    /// Runs the check.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of checks.
#[derive(Default)]
pub struct Registry {
    lints: Vec<Box<dyn Lint>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The full built-in battery, L001 through L007.
    pub fn standard() -> Registry {
        let mut r = Registry::new();
        r.add(WidthCheck);
        r.add(UndrivenCheck);
        r.add(MultiplyDrivenCheck);
        r.add(DeadLogicCheck);
        r.add(CombLoopCheck);
        r.add(NoResetCheck);
        r.add(SymbolCoverageCheck);
        r
    }

    /// Appends a check.
    pub fn add(&mut self, lint: impl Lint + 'static) -> &mut Registry {
        self.lints.push(Box::new(lint));
        self
    }

    /// Runs every non-allowed check over the state and debug table,
    /// flattening the circuit once for the netlist-level checks.
    pub fn run(&self, state: &CircuitState, table: &DebugTable, config: &LintConfig) -> Report {
        let (netlist, netlist_err) = match FlatNetlist::build(&state.circuit) {
            Ok(n) => (Some(n), None),
            Err(e) => (None, Some(e)),
        };
        let cx = LintContext {
            state,
            table,
            netlist: netlist.as_ref(),
            netlist_err: netlist_err.as_ref(),
        };
        let mut report = Report::default();
        for lint in &self.lints {
            let level = config.level(lint.code());
            if level == Severity::Allow {
                continue;
            }
            let mut found = Vec::new();
            lint.run(&cx, &mut found);
            for mut d in found {
                d.severity = level;
                report.diagnostics.push(d);
            }
        }
        report
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let codes: Vec<&str> = self.lints.iter().map(|l| l.code().as_str()).collect();
        f.debug_struct("Registry").field("lints", &codes).finish()
    }
}

/// Runs the standard battery with the given configuration.
pub fn check(state: &CircuitState, table: &DebugTable, config: &LintConfig) -> Report {
    Registry::standard().run(state, table, config)
}

/// A post-compile hook for `hgf_ir::passes::compile_with_check`: runs
/// the standard battery and rejects the circuit when any deny-level
/// diagnostic fires (the rendered report is the error payload).
pub fn deny_gate(
    config: LintConfig,
) -> impl FnOnce(&CircuitState, &DebugTable) -> Result<(), String> {
    move |state, table| {
        let report = check(state, table, &config);
        if report.deny_count() > 0 {
            Err(report.to_string())
        } else {
            Ok(())
        }
    }
}

/// L007 against a *live* session: verifies every symbol-table variable
/// path resolves through `resolve` (typically `SimControl::get_value`).
/// Used by the debug service to answer `lint` requests when no
/// compile-time report was recorded.
pub fn symbol_coverage_live<'a>(
    paths: impl IntoIterator<Item = &'a str>,
    resolve: &dyn Fn(&str) -> bool,
) -> Report {
    let mut report = Report::default();
    for path in paths {
        if !resolve(path) {
            report.diagnostics.push(
                Diagnostic::new(
                    Code::L007,
                    format!("symbol-table variable `{path}` does not resolve to a live signal"),
                    None,
                )
                .note("the source↔RTL mapping is stale for this variable"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests;
