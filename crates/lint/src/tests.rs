use hgf_ir::passes::{compile, compile_with_check, DebugTable, DebugVariable};
use hgf_ir::{
    BinaryOp, Circuit, CircuitState, DebugAnnotation, Expr, Module, Port, PortDir, SourceLoc, Stmt,
    StmtId, UnaryOp,
};

use crate::{check, deny_gate, symbol_coverage_live, Code, LintConfig, Report, Severity};

fn loc(line: u32) -> SourceLoc {
    SourceLoc::new("gen.py", line, 1)
}

/// `module m { input a: 8, output out: 8 }` with the given body.
fn module(stmts: Vec<Stmt>) -> Module {
    let mut m = Module::new("m", loc(1));
    m.ports = vec![
        Port {
            name: "a".into(),
            dir: PortDir::Input,
            width: 8,
            loc: loc(1),
        },
        Port {
            name: "out".into(),
            dir: PortDir::Output,
            width: 8,
            loc: loc(1),
        },
    ];
    m.stmts = stmts;
    m
}

fn connect(id: u32, target: &str, expr: Expr, line: u32) -> Stmt {
    Stmt::Connect {
        id: StmtId(id),
        target: target.into(),
        expr,
        loc: loc(line),
    }
}

fn wire(id: u32, name: &str, line: u32) -> Stmt {
    Stmt::Wire {
        id: StmtId(id),
        name: name.into(),
        width: 8,
        loc: loc(line),
    }
}

fn state_of(stmts: Vec<Stmt>) -> CircuitState {
    CircuitState::new(Circuit::new("m", vec![module(stmts)]))
}

fn lint(state: &CircuitState) -> Report {
    check(state, &DebugTable::default(), &LintConfig::new())
}

/// The canonical clean design: `out = a + 1`.
fn clean_state() -> CircuitState {
    state_of(vec![connect(
        1,
        "out",
        Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(1, 8)),
        2,
    )])
}

#[test]
fn clean_circuit_is_quiet() {
    let report = lint(&clean_state());
    assert!(report.is_clean(), "unexpected diagnostics:\n{report}");
}

#[test]
fn l001_fires_on_width_mismatch() {
    let state = state_of(vec![connect(1, "out", Expr::lit(1, 16), 3)]);
    let report = lint(&state);
    assert!(report.has(Code::L001), "{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L001)
        .unwrap();
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.loc.as_ref().unwrap().line, 3);
    assert!(d.message.contains("width 16"), "{}", d.message);
}

#[test]
fn l001_collects_multiple_violations() {
    // Bad connect width *and* an ill-typed node expression; validate()
    // would stop at the first, lint reports both.
    let state = state_of(vec![
        Stmt::Node {
            id: StmtId(1),
            name: "n".into(),
            expr: Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(1, 4)),
            loc: loc(2),
        },
        connect(2, "out", Expr::lit(1, 16), 3),
    ]);
    let fired = lint(&state)
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::L001)
        .count();
    assert_eq!(fired, 2);
}

#[test]
fn l001_quiet_on_matched_widths() {
    assert!(!lint(&clean_state()).has(Code::L001));
}

#[test]
fn l002_fires_on_undriven_wire() {
    // `w` is read (so it is live) but nothing ever drives it.
    let state = state_of(vec![wire(1, "w", 2), connect(2, "out", Expr::var("w"), 3)]);
    let report = lint(&state);
    assert!(report.has(Code::L002), "{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L002)
        .unwrap();
    assert!(d.message.contains("m.w"), "{}", d.message);
    assert_eq!(d.loc.as_ref().unwrap().line, 2);
}

#[test]
fn l002_fires_on_undriven_instance_input() {
    let child = module(vec![connect(1, "out", Expr::var("a"), 2)]);
    let mut child = child;
    child.name = "leaf".into();
    let mut top = module(vec![
        Stmt::Instance {
            id: StmtId(1),
            name: "u0".into(),
            module: "leaf".into(),
            loc: loc(4),
        },
        // u0.a never connected.
        connect(2, "out", Expr::var("u0.out"), 5),
    ]);
    top.name = "top".into();
    let state = CircuitState::new(Circuit::new("top", vec![top, child]));
    let report = lint(&state);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::L002 && d.message.contains("u0.a")),
        "{report}"
    );
}

#[test]
fn l002_quiet_when_driven_inside_when() {
    let cond = Expr::unary(UnaryOp::ReduceOr, Expr::var("a"));
    let state = state_of(vec![
        wire(1, "w", 2),
        Stmt::When {
            id: StmtId(2),
            cond,
            then_body: vec![connect(3, "w", Expr::var("a"), 3)],
            else_body: vec![connect(4, "w", Expr::lit(0, 8), 4)],
            loc: loc(3),
        },
        connect(5, "out", Expr::var("w"), 5),
    ]);
    assert!(!lint(&state).has(Code::L002));
}

#[test]
fn l003_fires_on_double_drive_in_same_scope() {
    let state = state_of(vec![
        connect(1, "out", Expr::var("a"), 2),
        connect(2, "out", Expr::lit(0, 8), 3),
    ]);
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L003)
        .expect("L003 fires");
    assert_eq!(d.loc.as_ref().unwrap().line, 3);
    assert!(d.notes[0].contains("gen.py:2"), "{:?}", d.notes);
}

#[test]
fn l003_quiet_across_sibling_when_branches() {
    let cond = Expr::unary(UnaryOp::ReduceOr, Expr::var("a"));
    let state = state_of(vec![Stmt::When {
        id: StmtId(1),
        cond,
        then_body: vec![connect(2, "out", Expr::var("a"), 3)],
        else_body: vec![connect(3, "out", Expr::lit(0, 8), 4)],
        loc: loc(2),
    }]);
    assert!(!lint(&state).has(Code::L003));
}

#[test]
fn l004_fires_on_dead_node() {
    let state = state_of(vec![
        Stmt::Node {
            id: StmtId(1),
            name: "dead".into(),
            expr: Expr::binary(BinaryOp::Add, Expr::var("a"), Expr::lit(1, 8)),
            loc: loc(2),
        },
        connect(2, "out", Expr::var("a"), 3),
    ]);
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L004)
        .expect("L004 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("m.dead"));
    assert!(d.notes.is_empty());
}

#[test]
fn l004_notes_debug_mode_dont_touch() {
    let mut state = state_of(vec![
        Stmt::Node {
            id: StmtId(1),
            name: "dead".into(),
            expr: Expr::lit(1, 8),
            loc: loc(2),
        },
        connect(2, "out", Expr::var("a"), 3),
    ]);
    state.annotations.add_dont_touch("m", "dead");
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L004)
        .expect("L004 fires");
    assert!(d.notes[0].contains("DontTouch"), "{:?}", d.notes);
}

#[test]
fn l004_quiet_on_live_logic() {
    assert!(!lint(&clean_state()).has(Code::L004));
}

#[test]
fn l005_fires_with_exact_cycle_and_locations() {
    let state = state_of(vec![
        wire(1, "x", 2),
        wire(2, "y", 3),
        connect(3, "x", Expr::var("y"), 4),
        connect(4, "y", Expr::var("x"), 5),
        connect(5, "out", Expr::var("a"), 6),
    ]);
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L005)
        .expect("L005 fires");
    // The cycle is exact: closes on itself and contains only x and y.
    let hops: Vec<&str> = d
        .message
        .strip_prefix("combinational loop: ")
        .unwrap()
        .split(" -> ")
        .collect();
    assert_eq!(hops.len(), 3, "{}", d.message);
    assert_eq!(hops.first(), hops.last());
    let mut distinct: Vec<&str> = hops[..2].to_vec();
    distinct.sort_unstable();
    assert_eq!(distinct, ["m.x", "m.y"]);
    // Every hop is source-located (wires declared at lines 2 and 3).
    assert_eq!(d.notes.len(), 2);
    assert!(
        d.notes.iter().all(|n| n.contains("gen.py:")),
        "{:?}",
        d.notes
    );
    assert!(d.loc.is_some());
}

#[test]
fn l005_quiet_on_acyclic_design() {
    assert!(!lint(&clean_state()).has(Code::L005));
}

#[test]
fn l006_fires_on_register_without_init() {
    let state = state_of(vec![
        Stmt::Reg {
            id: StmtId(1),
            name: "r".into(),
            width: 8,
            init: None,
            loc: loc(2),
        },
        connect(2, "r", Expr::var("a"), 3),
        connect(3, "out", Expr::var("r"), 4),
    ]);
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L006)
        .expect("L006 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("m.r"));
}

#[test]
fn l006_quiet_with_init() {
    let state = state_of(vec![
        Stmt::Reg {
            id: StmtId(1),
            name: "r".into(),
            width: 8,
            init: Some(bits(0, 8)),
            loc: loc(2),
        },
        connect(2, "r", Expr::var("a"), 3),
        connect(3, "out", Expr::var("r"), 4),
    ]);
    assert!(!lint(&state).has(Code::L006));
}

fn bits(value: u64, width: u32) -> bits::Bits {
    bits::Bits::from_u64(value, width)
}

#[test]
fn l007_fires_on_stranded_variable() {
    let state = clean_state();
    let table = DebugTable {
        variables: vec![DebugVariable {
            module: "m".into(),
            name: "counter".into(),
            rtl: "gone".into(),
        }],
        ..DebugTable::default()
    };
    let report = check(&state, &table, &LintConfig::new());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L007)
        .expect("L007 fires");
    assert!(d.message.contains("m.gone"), "{}", d.message);
}

#[test]
fn l007_fires_on_annotation_without_breakpoint() {
    let mut state = clean_state();
    state.annotations.add_debug(DebugAnnotation {
        module: "m".into(),
        stmt: StmtId(99),
        loc: loc(7),
        enable: None,
        assigned: None,
        scope: Vec::new(),
    });
    let report = lint(&state);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::L007)
        .expect("L007 fires");
    assert_eq!(d.loc.as_ref().unwrap().line, 7);
}

#[test]
fn l007_quiet_when_symbols_resolve() {
    let state = clean_state();
    let table = DebugTable {
        variables: vec![DebugVariable {
            module: "m".into(),
            name: "result".into(),
            rtl: "out".into(),
        }],
        ..DebugTable::default()
    };
    assert!(!check(&state, &table, &LintConfig::new()).has(Code::L007));
}

#[test]
fn compiled_design_is_quiet_end_to_end() {
    // A real compile (debug mode) of the clean design, then lint with
    // the debug-build config: nothing fires.
    let mut state = clean_state();
    let table = compile(&mut state, true).unwrap();
    let report = check(&state, &table, &LintConfig::new().allow(Code::L004));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn config_allow_suppresses_and_deny_escalates() {
    let state = state_of(vec![
        Stmt::Reg {
            id: StmtId(1),
            name: "r".into(),
            width: 8,
            init: None,
            loc: loc(2),
        },
        connect(2, "r", Expr::var("a"), 3),
        connect(3, "out", Expr::var("r"), 4),
    ]);
    let table = DebugTable::default();
    let quiet = check(&state, &table, &LintConfig::new().allow(Code::L006));
    assert!(!quiet.has(Code::L006));
    let denied = check(&state, &table, &LintConfig::new().deny(Code::L006));
    assert_eq!(denied.deny_count(), 1);
    assert_eq!(denied.warn_count(), 0);
}

#[test]
fn deny_gate_fails_compile_on_deny_diagnostic() {
    // A cross-instance combinational loop survives the whole pipeline
    // (per-module expansion cannot see it) but is an L005 deny.
    let mut leaf = module(vec![connect(1, "out", Expr::var("a"), 2)]);
    leaf.name = "leaf".into();
    let mut top = module(vec![
        Stmt::Instance {
            id: StmtId(1),
            name: "u0".into(),
            module: "leaf".into(),
            loc: loc(4),
        },
        connect(2, "u0.a", Expr::var("u0.out"), 5),
        connect(3, "out", Expr::var("u0.out"), 6),
    ]);
    top.name = "top".into();
    let mut state = CircuitState::new(Circuit::new("top", vec![top, leaf]));
    let err = compile_with_check(&mut state, false, deny_gate(LintConfig::new()))
        .expect_err("gate rejects");
    assert_eq!(err.pass, "post-compile-check");
    assert!(err.to_string().contains("L005"), "{err}");

    let mut clean = clean_state();
    compile_with_check(&mut clean, false, deny_gate(LintConfig::new()))
        .expect("clean design passes the gate");
}

#[test]
fn symbol_coverage_live_reports_unresolvable_paths() {
    let paths = ["top.a".to_string(), "top.gone".to_string()];
    let report = symbol_coverage_live(paths.iter().map(String::as_str), &|p: &str| p == "top.a");
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].code, Code::L007);
    assert!(report.diagnostics[0].message.contains("top.gone"));
}

#[test]
fn report_json_schema() {
    let state = state_of(vec![connect(1, "out", Expr::lit(1, 16), 3)]);
    let json = lint(&state).to_json();
    assert_eq!(json.get("clean").and_then(|j| j.as_bool()), Some(false));
    assert_eq!(json.get("count").and_then(|j| j.as_i64()), Some(1));
    let diags = json.get("diagnostics").and_then(|j| j.as_array()).unwrap();
    let d = &diags[0];
    assert_eq!(d.get("code").and_then(|j| j.as_str()), Some("L001"));
    assert_eq!(d.get("severity").and_then(|j| j.as_str()), Some("deny"));
    let l = d.get("loc").unwrap();
    assert_eq!(l.get("file").and_then(|j| j.as_str()), Some("gen.py"));
    assert_eq!(l.get("line").and_then(|j| j.as_i64()), Some(3));
    // Round-trips through the wire encoding.
    let parsed = microjson::parse(&json.to_string()).unwrap();
    assert_eq!(parsed.get("count").and_then(|j| j.as_i64()), Some(1));

    let clean = lint(&clean_state()).to_json();
    assert_eq!(clean.get("clean").and_then(|j| j.as_bool()), Some(true));
}

#[test]
fn report_display_renders_counts() {
    let state = state_of(vec![connect(1, "out", Expr::lit(1, 16), 3)]);
    let text = lint(&state).to_string();
    assert!(text.contains("deny[L001]"), "{text}");
    assert!(text.contains("--> gen.py:3:1"), "{text}");
    assert!(text.contains("1 deny, 0 warn"), "{text}");
    assert_eq!(lint(&clean_state()).to_string(), "lint clean");
}
