//! Mutation-based property tests for the lint battery.
//!
//! Each case generates a random *clean* chain circuit — wires `s1..sk`
//! where every `s_i` combines its predecessor with the input port, and
//! the output consumes the tail, so nothing is dead, undriven, doubly
//! driven, ill-typed, or cyclic — asserts the battery is quiet on it,
//! then applies one seeded mutation and asserts exactly the matching
//! code fires:
//!
//! * duplicate a driver      → L003
//! * drop a driver           → L002
//! * widen one operand       → L001
//! * add a back-edge         → L005

use hgdb_lint::{check, Code, LintConfig, Report};
use hgf_ir::passes::DebugTable;
use hgf_ir::{
    BinaryOp, Circuit, CircuitState, Expr, Module, Port, PortDir, SourceLoc, Stmt, StmtId,
};
use proptest::prelude::*;

/// Deterministic SplitMix64 (same scheme as the sim crate's proptests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn loc(line: u32) -> SourceLoc {
    SourceLoc::new("chain.py", line, 1)
}

/// A random clean chain: `s1 = f(a, a)`, `s_i = f(s_{i-1}, a)`,
/// `out = s_k`, all signals 8 bits wide. Returns the state and `k`.
fn chain(rng: &mut Rng) -> (CircuitState, usize) {
    let k = 2 + rng.below(8) as usize;
    let mut m = Module::new("m", loc(1));
    m.ports = vec![
        Port {
            name: "a".into(),
            dir: PortDir::Input,
            width: 8,
            loc: loc(1),
        },
        Port {
            name: "out".into(),
            dir: PortDir::Output,
            width: 8,
            loc: loc(1),
        },
    ];
    let mut id = 0u32;
    let mut next_id = || {
        id += 1;
        StmtId(id)
    };
    let ops = [BinaryOp::Add, BinaryOp::And, BinaryOp::Or, BinaryOp::Xor];
    for i in 1..=k {
        m.stmts.push(Stmt::Wire {
            id: next_id(),
            name: format!("s{i}"),
            width: 8,
            loc: loc(i as u32 + 1),
        });
    }
    for i in 1..=k {
        let prev = if i == 1 {
            Expr::var("a")
        } else {
            Expr::var(format!("s{}", i - 1))
        };
        let op = ops[rng.below(ops.len() as u64) as usize];
        m.stmts.push(Stmt::Connect {
            id: next_id(),
            target: format!("s{i}"),
            expr: Expr::binary(op, prev, Expr::var("a")),
            loc: loc(i as u32 + 20),
        });
    }
    m.stmts.push(Stmt::Connect {
        id: next_id(),
        target: "out".into(),
        expr: Expr::var(format!("s{k}")),
        loc: loc(40),
    });
    (CircuitState::new(Circuit::new("m", vec![m])), k)
}

fn lint(state: &CircuitState) -> Report {
    check(state, &DebugTable::default(), &LintConfig::new())
}

/// Index into `stmts` of the connect driving `s{i}`.
fn driver_of(m: &Module, i: usize) -> usize {
    let name = format!("s{i}");
    m.stmts
        .iter()
        .position(|s| matches!(s, Stmt::Connect { target, .. } if *target == name))
        .expect("chain signal has a driver")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unmutated random chains are lint-quiet.
    #[test]
    fn clean_chains_are_quiet(seed in any::<u64>()) {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
        let (state, _) = chain(&mut rng);
        let report = lint(&state);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Duplicating a driver fires exactly L003.
    #[test]
    fn duplicated_driver_fires_l003(seed in any::<u64>()) {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 2);
        let (mut state, k) = chain(&mut rng);
        let i = 1 + rng.below(k as u64) as usize;
        let m = &mut state.circuit.modules[0];
        let di = driver_of(m, i);
        let mut dup = m.stmts[di].clone();
        if let Stmt::Connect { id, .. } = &mut dup {
            *id = StmtId(900);
        }
        m.stmts.push(dup);
        let report = lint(&state);
        prop_assert_eq!(report.codes(), vec![Code::L003], "{}", report);
    }

    /// Dropping the first driver fires exactly L002 (the wire is still
    /// read downstream, so nothing else becomes dead).
    #[test]
    fn dropped_driver_fires_l002(seed in any::<u64>()) {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 3);
        let (mut state, _) = chain(&mut rng);
        let m = &mut state.circuit.modules[0];
        let di = driver_of(m, 1);
        m.stmts.remove(di);
        let report = lint(&state);
        prop_assert_eq!(report.codes(), vec![Code::L002], "{}", report);
    }

    /// Widening one operand fires exactly L001.
    #[test]
    fn widened_operand_fires_l001(seed in any::<u64>()) {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 4);
        let (mut state, k) = chain(&mut rng);
        let i = 1 + rng.below(k as u64) as usize;
        let m = &mut state.circuit.modules[0];
        let di = driver_of(m, i);
        if let Stmt::Connect { expr, .. } = &mut m.stmts[di] {
            // Pad to 16 bits: references survive, the width does not.
            *expr = Expr::Cat(Box::new(Expr::lit(0, 8)), Box::new(expr.clone()));
        }
        let report = lint(&state);
        prop_assert_eq!(report.codes(), vec![Code::L001], "{}", report);
    }

    /// Rewiring an early driver onto a later chain signal fires
    /// exactly L005, and the diagnostic names a genuine cycle.
    #[test]
    fn back_edge_fires_l005(seed in any::<u64>()) {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 5);
        let (mut state, k) = chain(&mut rng);
        let i = 1 + rng.below(k as u64 - 1) as usize;
        let j = i + 1 + rng.below((k - i) as u64) as usize;
        let m = &mut state.circuit.modules[0];
        let di = driver_of(m, i);
        if let Stmt::Connect { expr, .. } = &mut m.stmts[di] {
            // AND in the back-reference: old operands stay referenced,
            // so no upstream logic goes dead.
            *expr = Expr::binary(BinaryOp::And, Expr::var(format!("s{j}")), expr.clone());
        }
        let report = lint(&state);
        prop_assert_eq!(report.codes(), vec![Code::L005], "{}", report);
        let d = &report.diagnostics[0];
        let hops: Vec<&str> = d
            .message
            .strip_prefix("combinational loop: ")
            .expect("loop message")
            .split(" -> ")
            .collect();
        prop_assert_eq!(hops.first(), hops.last());
        // The cycle lies within the rewired span s_i..s_j.
        for h in &hops {
            let idx: usize = h.trim_start_matches("m.s").parse().expect("chain signal");
            prop_assert!(idx >= i && idx <= j, "{} outside [{}, {}]", h, i, j);
        }
        prop_assert_eq!(d.notes.len(), hops.len() - 1);
    }
}
