//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! shim implements the subset of proptest the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_flat_map`, `prop_recursive`, and `boxed`; strategies for
//! ranges, tuples, `Just`, `any::<T>()`, `prop::collection::vec`, and
//! character-class string patterns; and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, and
//! `prop_oneof!` macros driven by a deterministic per-test RNG.
//!
//! Differences from real proptest, by design: no shrinking (a failing
//! case prints its seed context instead), string patterns support
//! character classes and `\PC` with a `{m,n}` repetition rather than
//! full regex syntax, and generation is deterministic per test name so
//! CI failures always reproduce. Swap back to the real crate by
//! pointing the workspace dependency at the registry.

pub mod test_runner {
    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one named test; the same name always yields the
        /// same sequence, so failures reproduce across runs.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        /// Generates a value, then draws from the strategy it selects.
        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, map }
        }

        /// Type-erases the strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// Builds a recursive strategy: `self` is the leaf, and
        /// `recurse` wraps an inner strategy into a deeper one, up to
        /// `depth` levels. The size-hint parameters are accepted for
        /// API compatibility but not interpreted.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Cloneable type-erased strategy handle.
    pub struct BoxedStrategy<V> {
        inner: Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            self.inner.new_value(rng)
        }
    }

    /// Uniform choice between several strategies of one value type;
    /// what `prop_oneof!` builds.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].new_value(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident . $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = rng.next_u128() % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = rng.next_u128() % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Canonical strategy for `T`; see [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for AnyStrategy<T> {}

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-4 draws toward boundary values, which
                    // uniform sampling over wide types almost never
                    // hits but which dominate real-world bugs.
                    if rng.below(4) == 0 {
                        const EDGES: [$t; 5] =
                            [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX >> 1];
                        EDGES[rng.below(EDGES.len() as u64) as usize]
                    } else {
                        rng.next_u128() as $t
                    }
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread across magnitudes.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exponent = rng.below(600) as i32 - 300;
            mantissa * 10f64.powi(exponent)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    //! Pattern-based string generation.
    //!
    //! Supports the shapes this workspace's tests use: a character
    //! class (`[a-z0-9_\-]`) or the printable-any class `\PC`,
    //! followed by an optional `{m,n}` / `{n}` repetition. Unsupported
    //! patterns fall back to short alphanumeric strings.

    use crate::test_runner::TestRng;

    enum CharSet {
        Explicit(Vec<char>),
        Printable,
    }

    /// Extra non-ASCII printable characters mixed into `\PC` output so
    /// multi-byte UTF-8 paths get exercised.
    const UNICODE_SAMPLES: [char; 10] = ['¡', 'é', 'ß', 'Ж', 'λ', 'Ω', '中', '日', '→', '🦀'];

    /// Generates one string matching `pattern` (best effort).
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let (set, min, max) = parse(pattern).unwrap_or_else(|| {
            (
                CharSet::Explicit("abcdefghijklmnopqrstuvwxyz0123456789".chars().collect()),
                0,
                16,
            )
        });
        let len = min + rng.below((max - min) as u64 + 1) as usize;
        (0..len).map(|_| sample(&set, rng)).collect()
    }

    fn sample(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Explicit(chars) => chars[rng.below(chars.len() as u64) as usize],
            CharSet::Printable => {
                if rng.below(10) == 0 {
                    UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len() as u64) as usize]
                } else {
                    char::from(b' ' + rng.below(95) as u8)
                }
            }
        }
    }

    fn parse(pattern: &str) -> Option<(CharSet, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let (set, rest) = if let Some(stripped) = pattern.strip_prefix("\\PC") {
            (CharSet::Printable, stripped.chars().collect::<Vec<_>>())
        } else if chars.first() == Some(&'[') {
            let mut members = Vec::new();
            let mut i = 1;
            loop {
                match *chars.get(i)? {
                    ']' => {
                        i += 1;
                        break;
                    }
                    '\\' => {
                        members.push(*chars.get(i + 1)?);
                        i += 2;
                    }
                    c => {
                        // `a-z` range when a dash sits between two
                        // class members.
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&e| e != ']')
                        {
                            let end = chars[i + 2];
                            for v in c as u32..=end as u32 {
                                members.push(char::from_u32(v)?);
                            }
                            i += 3;
                        } else {
                            members.push(c);
                            i += 1;
                        }
                    }
                }
            }
            if members.is_empty() {
                return None;
            }
            (CharSet::Explicit(members), chars[i..].to_vec())
        } else {
            return None;
        };

        if rest.is_empty() {
            return Some((set, 1, 1));
        }
        if rest.first() != Some(&'{') || rest.last() != Some(&'}') {
            return None;
        }
        let body: String = rest[1..rest.len() - 1].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = body.parse().ok()?;
                (n, n)
            }
        };
        if min > max {
            return None;
        }
        Some((set, min, max))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_with_ranges_and_escapes() {
            let mut rng = TestRng::for_test("class");
            for _ in 0..200 {
                let s = generate("[a-cXY_\\-]{1,4}", &mut rng);
                assert!((1..=4).contains(&s.chars().count()), "{s:?}");
                assert!(s.chars().all(|c| "abcXY_-".contains(c)), "{s:?}");
            }
        }

        #[test]
        fn printable_any() {
            let mut rng = TestRng::for_test("pc");
            for _ in 0..200 {
                let s = generate("\\PC{0,64}", &mut rng);
                assert!(s.chars().count() <= 64);
                assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            }
        }

        #[test]
        fn unsupported_pattern_falls_back() {
            let mut rng = TestRng::for_test("fallback");
            let s = generate("(complex|regex)+", &mut rng);
            assert!(s.chars().count() <= 16);
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(bindings in strategies)`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($pattern:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        let ($($pattern,)+) = (
                            $($crate::strategy::Strategy::new_value(&($strategy), &mut rng),)+
                        );
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                accepted,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let mut c = crate::test_runner::TestRng::for_test("other");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn union_and_collection_compose() {
        let strat = prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 3..=5);
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i32..=5, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_links_values((w, v) in (1u32..=63).prop_flat_map(|w| {
            let mask = (1u64 << w) - 1;
            (Just(w), any::<u64>().prop_map(move |v| v & mask))
        })) {
            prop_assert!((1..=63).contains(&w));
            prop_assert!(v < (1u64 << w));
        }

        #[test]
        fn assume_rejects_instead_of_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
