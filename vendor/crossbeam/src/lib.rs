//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! shim provides the two API surfaces the workspace uses: the
//! `channel` module's unbounded MPMC channel with cloneable `Sender`
//! and `Receiver` endpoints and disconnect-aware `send`/`recv`, and
//! the `thread` module's scoped threads (`thread::scope`). Both favor
//! correctness over throughput — the channel is `Mutex<VecDeque>` +
//! `Condvar`, the scope delegates to `std::thread::scope`. Swap back
//! to the real crate by pointing the workspace dependency at the
//! registry.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the rejected message like crossbeam's version.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.pad("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout; senders remain.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.pad("timed out waiting on receive operation"),
                RecvTimeoutError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel, returning its two endpoints.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value back when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time;
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// and every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Pops a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued;
        /// [`TryRecvError::Disconnected`] once senders are gone too.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_round_trip() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's error-reporting surface.
    //!
    //! `crossbeam::thread::scope` predates `std::thread::scope` and
    //! differs from it in two ways this shim preserves: the closure
    //! passed to [`Scope::spawn`] receives the scope again (so children
    //! can spawn siblings), and a panicking child surfaces as an `Err`
    //! from [`scope`] rather than unwinding the caller directly.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked scoped thread.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// Result of a scope run: `Err` carries the panic payload when any
    /// unjoined child panicked.
    pub type Result<T> = std::result::Result<T, Payload>;

    /// Handle to a scope in which child threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further siblings (crossbeam's signature; callers
        /// that don't need it write `|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. All children are joined before `scope` returns;
    /// a panic in any unjoined child is reported as `Err` instead of
    /// propagating.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of a panicking unjoined child (or of
    /// the closure itself).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total = AtomicUsize::new(0);
            scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        let sum: u64 = chunk.iter().sum();
                        total.fetch_add(sum as usize, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn children_can_spawn_siblings() {
            let hits = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|s2| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    s2.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 2);
        }

        #[test]
        fn joined_results_propagate() {
            let doubled = scope(|s| {
                let h = s.spawn(|_| 21 * 2);
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(doubled, 42);
        }

        #[test]
        fn unjoined_child_panic_is_an_err() {
            let r = scope(|s| {
                s.spawn::<_, ()>(|_| panic!("child died"));
            });
            assert!(r.is_err());
        }
    }
}
