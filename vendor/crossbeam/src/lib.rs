//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! shim provides the one API surface the workspace uses: the
//! `channel` module's unbounded MPMC channel with cloneable `Sender`
//! and `Receiver` endpoints and disconnect-aware `send`/`recv`.
//! It is implemented over `Mutex<VecDeque>` + `Condvar`; correctness
//! over throughput. Swap back to the real crate by pointing the
//! workspace dependency at the registry.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the rejected message like crossbeam's version.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.pad("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel, returning its two endpoints.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value back when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Pops a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued;
        /// [`TryRecvError::Disconnected`] once senders are gone too.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_round_trip() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
