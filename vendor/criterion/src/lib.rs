//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! shim provides the subset of the Criterion API the workspace's
//! benches use: `Criterion`, `BenchmarkGroup` (with `sample_size`,
//! `warm_up_time`, `measurement_time`, `bench_function`, `finish`),
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple — per-sample wall-clock means
//! with a median summary, no outlier analysis, no HTML reports — but
//! it is a real measurement loop, so `cargo bench` produces usable
//! relative numbers. Swap back to the real crate by pointing the
//! workspace dependency at the registry.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost across timed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many runs per setup.
    SmallInput,
    /// Large inputs: batch few runs per setup.
    LargeInput,
    /// Call setup before every single timed run.
    PerIteration,
    /// Explicit number of batches per sample.
    NumBatches(u64),
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-input `setup` excluded from the
    /// measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

#[derive(Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: GroupConfig,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let config = self.config;
        run_benchmark(&name.into(), &config, f);
        self
    }
}

/// A named group of benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the wall-clock budget spread across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Measures one benchmark and prints its summary line.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, &self.config, f);
        self
    }

    /// Ends the group (summary lines are printed eagerly).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: &GroupConfig, mut f: F) {
    // Calibration: one iteration, timed, to size the warm-up and
    // measurement budgets in iterations.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    let iters_for = |budget: Duration| -> u64 {
        (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
    };

    let warm_iters = iters_for(config.warm_up_time);
    bencher.iters = warm_iters;
    f(&mut bencher);

    let sample_iters = iters_for(config.measurement_time / config.sample_size as u32);
    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.iters = sample_iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let lo = per_iter_nanos[0];
    let hi = per_iter_nanos[per_iter_nanos.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}] ({} samples x {} iters)",
        fmt_nanos(lo),
        fmt_nanos(median),
        fmt_nanos(hi),
        config.sample_size,
        sample_iters,
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` the harness passes flags such
            // as `--test`; running measurements there would be wasteful.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(3));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |v| v * 2,
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 4);
    }
}
