//! Meta crate for the hgdb reproduction workspace.
//!
//! Re-exports every workspace crate so that the root `examples/` and
//! `tests/` directories can exercise the full public API surface.

pub use bits;
pub use hgdb;
pub use hgf;
pub use hgf_ir;
pub use microjson;
pub use minidb;
pub use rtl_sim;
pub use rv32;
pub use symtab;
pub use vcd;
